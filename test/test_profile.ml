(* Tests for pc_profile: SFG construction, instruction mix, dependency
   distances, stride/footprint/run detection, branch rates, and profile
   serialisation. *)

module I = Pc_isa.Instr
module Asm = Pc_isa.Asm
module Program = Pc_isa.Program
module Profile = Pc_profile.Profile
module Collector = Pc_profile.Collector

let loop ?(iters = 100) body =
  Asm.assemble ~name:"t"
    ([ Asm.Ins (I.Li (20, Int64.of_int iters)); Asm.Label "top" ]
    @ List.map (fun i -> Asm.Ins i) body
    @ [
        Asm.Ins (I.Alui (I.Add, 20, 20, -1));
        Asm.Ins (I.Br (I.Gt_z, 20, I.Label "top"));
        Asm.Ins I.Halt;
      ])

(* --- global mix --- *)

let test_global_mix () =
  let p = loop [ I.Alu (I.Add, 1, 2, 3); I.Fmul (1, 2, 3); I.Load (4, 29, 0) ] in
  let prof = Collector.profile p in
  let frac c = prof.Profile.global_mix.(I.class_index c) in
  (* body of 6 per iteration: add, fmul, load, addi, branch (+Li, Halt once) *)
  Alcotest.(check bool) "mix sums to 1" true
    (abs_float (Array.fold_left ( +. ) 0.0 prof.Profile.global_mix -. 1.0) < 1e-9);
  Alcotest.(check bool) "int_alu ~2/5" true (abs_float (frac I.C_int_alu -. 0.4) < 0.02);
  Alcotest.(check bool) "fp_mul ~1/5" true (abs_float (frac I.C_fp_mul -. 0.2) < 0.02);
  Alcotest.(check bool) "load ~1/5" true (abs_float (frac I.C_load -. 0.2) < 0.02);
  Alcotest.(check bool) "branch ~1/5" true (abs_float (frac I.C_branch -. 0.2) < 0.02)

(* --- SFG structure --- *)

let test_sfg_nodes_and_successors () =
  (* if/else alternating by parity: two distinct successor blocks *)
  let p =
    Asm.assemble ~name:"t"
      [
        Asm.Ins (I.Li (20, 100L));
        Asm.Label "top";
        Asm.Ins (I.Alui (I.And, 1, 20, 1));
        Asm.Ins (I.Br (I.Eq_z, 1, I.Label "even"));
        Asm.Ins (I.Alu (I.Add, 2, 2, 2));
        Asm.Ins (I.Jmp (I.Label "join"));
        Asm.Label "even";
        Asm.Ins (I.Alu (I.Sub, 2, 2, 2));
        Asm.Label "join";
        Asm.Ins (I.Alui (I.Add, 20, 20, -1));
        Asm.Ins (I.Br (I.Gt_z, 20, I.Label "top"));
        Asm.Ins I.Halt;
      ]
  in
  let prof = Collector.profile p in
  Alcotest.(check bool) "several nodes" true (Array.length prof.Profile.nodes >= 4);
  (* the header block (ending in the parity branch) must have 2 successors *)
  let header =
    Array.to_list prof.Profile.nodes
    |> List.filter (fun (n : Profile.node) ->
           Array.length n.Profile.successors = 2 && n.Profile.count > 40)
  in
  Alcotest.(check bool) "a hot 2-successor node exists" true (header <> []);
  Array.iter
    (fun (n : Profile.node) ->
      let total = Array.fold_left (fun a (_, p) -> a +. p) 0.0 n.Profile.successors in
      if Array.length n.Profile.successors > 0 then
        Alcotest.(check (float 1e-6)) "successor probabilities sum to 1" 1.0 total)
    prof.Profile.nodes

let test_node_counts_sum_to_blocks () =
  let p = loop ~iters:50 [ I.Alu (I.Add, 1, 2, 3) ] in
  let prof = Collector.profile p in
  let total = Array.fold_left (fun a n -> a + n.Profile.count) 0 prof.Profile.nodes in
  (* 50 loop bodies + preamble/halt block *)
  Alcotest.(check bool) "block executions counted" true (total >= 50)

(* --- dependency distances --- *)

let test_dep_distance_short_chain () =
  (* each instruction reads the previous one's result: distance 1 *)
  let p = loop [ I.Alu (I.Add, 1, 1, 0); I.Alu (I.Add, 1, 1, 0); I.Alu (I.Add, 1, 1, 0) ] in
  let prof = Collector.profile p in
  (* body nodes: most dependencies fall in bucket 0 (distance 1) *)
  let hot =
    Array.to_list prof.Profile.nodes
    |> List.filter (fun n -> n.Profile.count > 50)
  in
  Alcotest.(check bool) "found hot node" true (hot <> []);
  List.iter
    (fun (n : Profile.node) ->
      Alcotest.(check bool) "distance-1 dominates" true (n.Profile.dep_fractions.(0) > 0.5))
    hot

let test_dep_distance_long () =
  (* producers separated by 16 filler instructions reading r9 only *)
  let body =
    [ I.Alu (I.Add, 1, 2, 3) ]
    @ List.init 16 (fun _ -> I.Alu (I.Add, 9, 10, 11))
    @ [ I.Alu (I.Add, 4, 1, 1) ] (* reads r1: distance 17 -> bucket <=32 *)
  in
  let p = loop body in
  let prof = Collector.profile p in
  let hot =
    Array.to_list prof.Profile.nodes |> List.find (fun n -> n.Profile.count > 50)
  in
  (* bucket 6 covers distances 17..32 *)
  Alcotest.(check bool) "long-distance bucket populated" true
    (hot.Profile.dep_fractions.(6) > 0.01)

(* --- memory behaviour --- *)

let walk_program ~stride ~resets =
  Asm.assemble ~name:"walk"
    [
      Asm.Ins (I.Li (20, Int64.of_int resets));
      Asm.Label "outer";
      Asm.Ins (I.Li (21, Int64.of_int Program.data_base));
      Asm.Ins (I.Li (22, 64L));
      Asm.Label "top";
      Asm.Ins (I.Load (1, 21, 0));
      Asm.Ins (I.Alui (I.Add, 21, 21, stride));
      Asm.Ins (I.Alui (I.Add, 22, 22, -1));
      Asm.Ins (I.Br (I.Gt_z, 22, I.Label "top"));
      Asm.Ins (I.Alui (I.Add, 20, 20, -1));
      Asm.Ins (I.Br (I.Gt_z, 20, I.Label "outer"));
      Asm.Ins I.Halt;
    ]

let find_walk_op prof =
  let found = ref None in
  Array.iter
    (fun (n : Profile.node) ->
      Array.iter
        (fun (m : Profile.mem_op) -> if m.Profile.refs > 100 then found := Some m)
        n.Profile.mem_ops)
    prof.Profile.nodes;
  match !found with Some m -> m | None -> Alcotest.fail "walk op not found"

let test_stride_detection () =
  let prof = Collector.profile (walk_program ~stride:16 ~resets:10) in
  let m = find_walk_op prof in
  Alcotest.(check int) "dominant stride" 16 m.Profile.stride;
  Alcotest.(check bool) "mostly single stride" true
    (float_of_int m.Profile.single_stride_refs /. float_of_int m.Profile.refs > 0.9)

let test_footprint_and_runs () =
  let prof = Collector.profile (walk_program ~stride:8 ~resets:10) in
  let m = find_walk_op prof in
  (* 64 accesses of stride 8: footprint = 64*8 bytes *)
  Alcotest.(check int) "footprint" 512 m.Profile.footprint;
  (* runs break at each outer reset: average run near 64 *)
  Alcotest.(check bool) "run length near 64" true
    (m.Profile.stream_length > 55 && m.Profile.stream_length <= 70);
  Alcotest.(check int) "region is the array base" Program.data_base m.Profile.region

let test_single_stride_fraction_pure_walk () =
  let prof = Collector.profile (walk_program ~stride:8 ~resets:5) in
  Alcotest.(check bool) "fraction above 0.9" true
    (prof.Profile.single_stride_fraction > 0.9)

let test_row_stride_detection () =
  (* A 2-D walk: 16 rows of 8 elements; rows are 256 bytes apart. *)
  let p =
    Asm.assemble ~name:"grid"
      [
        Asm.Ins (I.Li (20, 16L)) (* rows *);
        Asm.Ins (I.Li (21, Int64.of_int Program.data_base));
        Asm.Label "row";
        Asm.Ins (I.Li (22, 8L)) (* columns *);
        Asm.Ins (I.Alui (I.Add, 23, 21, 0));
        Asm.Label "col";
        Asm.Ins (I.Load (1, 23, 0));
        Asm.Ins (I.Alui (I.Add, 23, 23, 8));
        Asm.Ins (I.Alui (I.Add, 22, 22, -1));
        Asm.Ins (I.Br (I.Gt_z, 22, I.Label "col"));
        Asm.Ins (I.Alui (I.Add, 21, 21, 256));
        Asm.Ins (I.Alui (I.Add, 20, 20, -1));
        Asm.Ins (I.Br (I.Gt_z, 20, I.Label "row"));
        Asm.Ins I.Halt;
      ]
  in
  let prof = Collector.profile p in
  let m = find_walk_op prof in
  Alcotest.(check int) "element stride" 8 m.Profile.stride;
  Alcotest.(check int) "row stride" 256 m.Profile.row_stride;
  Alcotest.(check bool) "run length near 8" true
    (m.Profile.stream_length >= 6 && m.Profile.stream_length <= 9)

let test_no_row_stride_for_1d () =
  let prof = Collector.profile (walk_program ~stride:8 ~resets:10) in
  let m = find_walk_op prof in
  (* 1-D re-walks: the only run transition is the reset jump back, which
     is a constant -footprint delta — acceptable as a "row", but it must
     be the reset distance, not noise. *)
  Alcotest.(check bool) "row stride is the reset or zero" true
    (m.Profile.row_stride = 0 || m.Profile.row_stride < 0)

let test_scalar_op () =
  let p = loop ~iters:200 [ I.Load (1, 29, 0) ] in
  let prof = Collector.profile p in
  let m = find_walk_op prof in
  Alcotest.(check int) "stride zero" 0 m.Profile.stride;
  Alcotest.(check int) "footprint one word" 8 m.Profile.footprint

(* --- branch behaviour --- *)

let branch_node_of prof =
  let best = ref None in
  Array.iter
    (fun (n : Profile.node) ->
      match n.Profile.branch with
      | Some b when b.Profile.execs > 50 -> best := Some b
      | _ -> ())
    prof.Profile.nodes;
  match !best with Some b -> b | None -> Alcotest.fail "no hot branch"

let test_biased_branch () =
  let p = loop ~iters:200 [ I.Alu (I.Add, 1, 2, 3) ] in
  let prof = Collector.profile p in
  let b = branch_node_of prof in
  (* loop back-edge: taken 199 of 200 *)
  Alcotest.(check bool) "high taken rate" true (b.Profile.taken_rate > 0.95);
  Alcotest.(check bool) "low transition rate" true (b.Profile.transition_rate < 0.05)

let test_alternating_branch () =
  let p =
    Asm.assemble ~name:"alt"
      [
        Asm.Ins (I.Li (20, 200L));
        Asm.Label "top";
        Asm.Ins (I.Alui (I.And, 1, 20, 1));
        Asm.Ins (I.Br (I.Eq_z, 1, I.Label "skip"));
        Asm.Label "skip";
        Asm.Ins (I.Alui (I.Add, 20, 20, -1));
        Asm.Ins (I.Br (I.Gt_z, 20, I.Label "top"));
        Asm.Ins I.Halt;
      ]
  in
  let prof = Collector.profile p in
  let alt =
    Array.to_list prof.Profile.nodes
    |> List.filter_map (fun (n : Profile.node) -> n.Profile.branch)
    |> List.filter (fun (b : Profile.branch_behaviour) ->
           b.Profile.execs > 50 && b.Profile.taken_rate > 0.3 && b.Profile.taken_rate < 0.7)
  in
  match alt with
  | b :: _ ->
    Alcotest.(check bool) "transition rate near 1" true (b.Profile.transition_rate > 0.9)
  | [] -> Alcotest.fail "alternating branch not profiled"

(* --- aggregates and serialisation --- *)

let test_instr_count_and_block_size () =
  let p = loop ~iters:10 [ I.Alu (I.Add, 1, 2, 3) ] in
  let prof = Collector.profile p in
  Alcotest.(check int) "instr count" (1 + (10 * 3) + 1) prof.Profile.instr_count;
  Alcotest.(check bool) "avg block size sane" true
    (prof.Profile.avg_block_size > 1.0 && prof.Profile.avg_block_size < 10.0)

let test_profile_roundtrip () =
  let entry = Pc_workloads.Registry.find "crc32" in
  let prof =
    Collector.profile ~max_instrs:100_000 (Pc_workloads.Registry.compile entry)
  in
  let path = Filename.temp_file "perfclone" ".profile" in
  let oc = open_out path in
  Profile.save oc prof;
  close_out oc;
  let ic = open_in path in
  let prof2 = Profile.load ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "name" prof.Profile.name prof2.Profile.name;
  Alcotest.(check int) "instr count" prof.Profile.instr_count prof2.Profile.instr_count;
  Alcotest.(check int) "nodes" (Array.length prof.Profile.nodes)
    (Array.length prof2.Profile.nodes);
  Alcotest.(check int) "streams" prof.Profile.unique_streams prof2.Profile.unique_streams;
  (* structural equality of a sample node *)
  let n1 = prof.Profile.nodes.(0) and n2 = prof2.Profile.nodes.(0) in
  Alcotest.(check int) "node size" n1.Profile.size n2.Profile.size;
  Alcotest.(check int) "node mem ops" (Array.length n1.Profile.mem_ops)
    (Array.length n2.Profile.mem_ops);
  Alcotest.(check bool) "mix equal" true (n1.Profile.mix = n2.Profile.mix);
  Alcotest.(check bool) "clone from loaded profile identical" true
    (Pc_synth.Synth.generate prof = Pc_synth.Synth.generate prof2)

let test_load_rejects_garbage () =
  let path = Filename.temp_file "perfclone" ".bad" in
  let oc = open_out path in
  output_string oc "not a profile\n";
  close_out oc;
  let ic = open_in path in
  let rejected = match Profile.load ic with _ -> false | exception Failure _ -> true in
  close_in ic;
  Sys.remove path;
  Alcotest.(check bool) "rejected" true rejected

let test_node_cdf () =
  let p = loop ~iters:50 [ I.Alu (I.Add, 1, 2, 3) ] in
  let prof = Collector.profile p in
  let cdf = Profile.node_cdf prof in
  Alcotest.(check int) "cdf length" (Array.length prof.Profile.nodes) (Array.length cdf);
  Alcotest.(check (float 1e-9)) "cdf ends at 1" 1.0 cdf.(Array.length cdf - 1);
  Array.iteri
    (fun i v -> if i > 0 && v < cdf.(i - 1) then Alcotest.fail "cdf not monotone")
    cdf

let () =
  Alcotest.run "pc_profile"
    [
      ( "mix+sfg",
        [
          Alcotest.test_case "global mix" `Quick test_global_mix;
          Alcotest.test_case "SFG nodes and successors" `Quick
            test_sfg_nodes_and_successors;
          Alcotest.test_case "node counts" `Quick test_node_counts_sum_to_blocks;
          Alcotest.test_case "node cdf" `Quick test_node_cdf;
        ] );
      ( "dependencies",
        [
          Alcotest.test_case "short chains" `Quick test_dep_distance_short_chain;
          Alcotest.test_case "long distances" `Quick test_dep_distance_long;
        ] );
      ( "memory",
        [
          Alcotest.test_case "stride detection" `Quick test_stride_detection;
          Alcotest.test_case "footprint and run length" `Quick test_footprint_and_runs;
          Alcotest.test_case "single-stride fraction" `Quick
            test_single_stride_fraction_pure_walk;
          Alcotest.test_case "scalar accesses" `Quick test_scalar_op;
          Alcotest.test_case "2-D row-stride detection" `Quick test_row_stride_detection;
          Alcotest.test_case "1-D walks have no spurious rows" `Quick
            test_no_row_stride_for_1d;
        ] );
      ( "branches",
        [
          Alcotest.test_case "biased branch" `Quick test_biased_branch;
          Alcotest.test_case "alternating branch" `Quick test_alternating_branch;
        ] );
      ( "aggregate+io",
        [
          Alcotest.test_case "instruction count and block size" `Quick
            test_instr_count_and_block_size;
          Alcotest.test_case "save/load roundtrip" `Quick test_profile_roundtrip;
          Alcotest.test_case "load rejects garbage" `Quick test_load_rejects_garbage;
        ] );
    ]
