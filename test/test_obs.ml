(* pc_obs: metrics registry, spans, sinks — and the invariant that
   enabling observability never changes experiment output.

   The registry and the enabled flag are global, so every test that
   flips [set_enabled] or calls [reset] restores the disabled default
   before returning. *)

module M = Pc_obs.Metrics
module Span = Pc_obs.Span
module Sink = Pc_obs.Sink
module Pool = Pc_exec.Pool
module E = Perfclone.Experiments

let with_enabled f =
  M.set_enabled true;
  Fun.protect ~finally:(fun () -> M.set_enabled false) f

(* --- metrics registry --- *)

let test_counter () =
  let c = M.counter "obs.test.counter" in
  let v0 = M.value c in
  M.incr c;
  M.add c 41;
  Alcotest.(check int) "incr + add" (v0 + 42) (M.value c)

let test_same_name_same_instrument () =
  let a = M.counter "obs.test.shared" in
  let b = M.counter "obs.test.shared" in
  let v0 = M.value a in
  M.incr a;
  M.incr b;
  Alcotest.(check int) "both handles hit one series" (v0 + 2) (M.value b)

let test_kind_mismatch () =
  ignore (M.counter "obs.test.kind");
  match M.gauge "obs.test.kind" with
  | _ -> Alcotest.fail "expected Invalid_argument for kind mismatch"
  | exception Invalid_argument _ -> ()

let test_gauge () =
  let g = M.gauge "obs.test.gauge" in
  M.set g 7;
  Alcotest.(check int) "set" 7 (M.gauge_value g);
  M.record_max g 3;
  Alcotest.(check int) "record_max keeps larger" 7 (M.gauge_value g);
  M.record_max g 11;
  Alcotest.(check int) "record_max takes larger" 11 (M.gauge_value g)

let hist_view name snap =
  match List.assoc_opt name snap.M.histograms with
  | Some v -> v
  | None -> Alcotest.failf "histogram %s missing from snapshot" name

let test_histogram () =
  let h = M.histogram ~buckets:[| 1.0; 2.0 |] "obs.test.hist" in
  M.observe h 0.5;
  M.observe h 1.5;
  M.observe h 99.0;
  let v = hist_view "obs.test.hist" (M.snapshot ()) in
  Alcotest.(check (array (float 1e-9))) "bounds" [| 1.0; 2.0 |] v.M.le;
  Alcotest.(check (array int)) "bucket counts (last = overflow)"
    [| 1; 1; 1 |] v.M.bucket_counts;
  Alcotest.(check int) "count" 3 v.M.count;
  Alcotest.(check (float 1e-9)) "sum" 101.0 v.M.sum

let test_histogram_bad_buckets () =
  match M.histogram ~buckets:[| 2.0; 1.0 |] "obs.test.hist.bad" with
  | _ -> Alcotest.fail "expected Invalid_argument for non-increasing buckets"
  | exception Invalid_argument _ -> ()

let test_snapshot_sorted_and_diff () =
  let cb = M.counter "obs.test.diff.b" in
  let ca = M.counter "obs.test.diff.a" in
  let g = M.gauge "obs.test.diff.g" in
  M.incr ca;
  let before = M.snapshot () in
  let names = List.map fst before.M.counters in
  Alcotest.(check (list string)) "counter names sorted"
    (List.sort compare names) names;
  M.add ca 4;
  M.add cb 2;
  M.set g 9;
  let after = M.snapshot () in
  let d = M.diff ~before ~after in
  Alcotest.(check (option int)) "counter delta" (Some 4)
    (List.assoc_opt "obs.test.diff.a" d.M.counters);
  Alcotest.(check (option int)) "other counter delta" (Some 2)
    (List.assoc_opt "obs.test.diff.b" d.M.counters);
  Alcotest.(check (option int)) "gauge keeps after value" (Some 9)
    (List.assoc_opt "obs.test.diff.g" d.M.gauges)

let test_diff_after_only_instruments () =
  (* Instruments created between the snapshots (e.g. by a lazily-built
     sample store) have no [before] entry; the diff must keep their
     [after] value instead of dropping or misattributing them. *)
  let before = { M.counters = []; gauges = []; histograms = [] } in
  let hv =
    { M.le = [| 1.0 |]; bucket_counts = [| 2; 1 |]; count = 3; sum = 4.5 }
  in
  let after =
    {
      M.counters = [ ("late.counter", 7) ];
      gauges = [ ("late.gauge", 3) ];
      histograms = [ ("late.hist", hv) ];
    }
  in
  let d = M.diff ~before ~after in
  Alcotest.(check (option int)) "after-only counter kept" (Some 7)
    (List.assoc_opt "late.counter" d.M.counters);
  Alcotest.(check (option int)) "after-only gauge kept" (Some 3)
    (List.assoc_opt "late.gauge" d.M.gauges);
  let v = hist_view "late.hist" d in
  Alcotest.(check (array int)) "after-only histogram counts kept"
    [| 2; 1 |] v.M.bucket_counts;
  Alcotest.(check int) "after-only histogram count kept" 3 v.M.count;
  Alcotest.(check (float 1e-9)) "after-only histogram sum kept" 4.5 v.M.sum

let test_diff_mismatched_histogram_layout () =
  (* A histogram re-registered with a different bucket layout between
     snapshots must not be subtracted across layouts (which would raise
     or silently misattribute counts); the [after] view wins. *)
  let b =
    { M.le = [| 1.0; 2.0; 3.0 |]; bucket_counts = [| 1; 1; 1; 1 |];
      count = 4; sum = 6.0 }
  in
  let a =
    { M.le = [| 5.0 |]; bucket_counts = [| 2; 3 |]; count = 5; sum = 9.0 }
  in
  let mk hv = { M.counters = []; gauges = []; histograms = [ ("h", hv) ] } in
  let d = M.diff ~before:(mk b) ~after:(mk a) in
  let v = hist_view "h" d in
  Alcotest.(check (array (float 1e-9))) "after layout" [| 5.0 |] v.M.le;
  Alcotest.(check (array int)) "after counts" [| 2; 3 |] v.M.bucket_counts;
  Alcotest.(check int) "after count" 5 v.M.count;
  Alcotest.(check (float 1e-9)) "after sum" 9.0 v.M.sum

let test_reset () =
  let c = M.counter "obs.test.reset" in
  M.add c 5;
  M.reset ();
  Alcotest.(check int) "zeroed" 0 (M.value c);
  let still_registered =
    List.mem_assoc "obs.test.reset" (M.snapshot ()).M.counters
  in
  Alcotest.(check bool) "registration survives" true still_registered

(* --- concurrency: no lost counts across pool domains --- *)

let test_no_lost_counts =
  QCheck.Test.make ~name:"concurrent increments lose no counts" ~count:20
    QCheck.(pair (int_range 1 8) (int_range 1 500))
    (fun (tasks, per_task) ->
      let c = M.counter "obs.test.concurrent" in
      let before = M.value c in
      let pool = Pool.create ~num_domains:4 in
      ignore
        (Pool.map pool
           (fun _ ->
             for _ = 1 to per_task do
               M.incr c
             done)
           (List.init tasks Fun.id));
      M.value c - before = tasks * per_task)

(* --- spans --- *)

let test_span_disabled_records_nothing () =
  Span.reset ();
  let v = Span.with_ "ghost" (fun () -> 5) in
  Alcotest.(check int) "value passes through" 5 v;
  Alcotest.(check int) "no roots recorded" 0 (List.length (Span.roots ()))

let test_span_nesting () =
  with_enabled @@ fun () ->
  Fun.protect ~finally:Span.reset @@ fun () ->
  Span.reset ();
  let v =
    Span.with_ "outer" (fun () ->
        ignore (Span.with_ "inner1" (fun () -> 1));
        ignore (Span.with_ "inner2" (fun () -> 2));
        42)
  in
  Alcotest.(check int) "value passes through" 42 v;
  match Span.roots () with
  | [ root ] ->
    Alcotest.(check string) "root name" "outer" (Span.name root);
    Alcotest.(check (list string)) "children in completion order"
      [ "inner1"; "inner2" ]
      (List.map Span.name (Span.children root));
    List.iter
      (fun s ->
        if Span.duration_s s < 0.0 then
          Alcotest.failf "negative duration for %s" (Span.name s))
      (root :: Span.children root)
  | l -> Alcotest.failf "expected one root, got %d" (List.length l)

let test_span_pool_adoption () =
  with_enabled @@ fun () ->
  Fun.protect ~finally:Span.reset @@ fun () ->
  Span.reset ();
  let pool = Pool.create ~num_domains:4 in
  ignore
    (Span.with_ "parent" (fun () ->
         Pool.map pool
           (fun i -> Span.with_ (Printf.sprintf "task%d" i) (fun () -> i * i))
           [ 1; 2; 3; 4 ]));
  match Span.roots () with
  | [ root ] ->
    Alcotest.(check string) "root name" "parent" (Span.name root);
    (* Sibling completion order is nondeterministic under a pool; only
       the set of children is specified. *)
    Alcotest.(check (list string)) "pool tasks attribute to the open span"
      [ "task1"; "task2"; "task3"; "task4" ]
      (List.sort compare (List.map Span.name (Span.children root)))
  | l -> Alcotest.failf "expected one root, got %d" (List.length l)

let test_hist_quantile () =
  (* 10 observations in [|1;2;4|]-bounded buckets: 5 in (0,1], 4 in
     (1,2], 1 overflow.  p50 = rank 5 → upper edge of the first bucket;
     p90 = rank 9 → exhausts (1,2]; p99 lands in the overflow bucket and
     clamps to the last finite bound. *)
  let v =
    { M.le = [| 1.0; 2.0; 4.0 |]; bucket_counts = [| 5; 4; 0; 1 |];
      count = 10; sum = 0.0 }
  in
  Alcotest.(check (float 1e-9)) "p50" 1.0 (M.hist_quantile v 0.5);
  Alcotest.(check (float 1e-9)) "p90" 2.0 (M.hist_quantile v 0.9);
  Alcotest.(check (float 1e-9)) "p99 clamps to last bound" 4.0
    (M.hist_quantile v 0.99);
  Alcotest.(check (float 1e-9)) "interpolates inside a bucket" 0.5
    (M.hist_quantile v 0.25);
  let empty =
    { M.le = [| 1.0 |]; bucket_counts = [| 0; 0 |]; count = 0; sum = 0.0 }
  in
  Alcotest.(check (float 1e-9)) "empty histogram reports 0" 0.0
    (M.hist_quantile empty 0.5)

(* --- sinks --- *)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let check_contains json needle =
  if not (contains ~needle json) then
    Alcotest.failf "JSON missing %s in: %s" needle json

let test_json_sink () =
  M.add (M.counter "obs.test.json.c") 7;
  M.set (M.gauge "obs.test.json.g") 3;
  M.observe (M.histogram ~buckets:[| 0.5 |] "obs.test.json.h") 1.5;
  let spans =
    with_enabled (fun () ->
        Span.reset ();
        ignore (Span.with_ "sink-span" (fun () -> ()));
        Fun.protect ~finally:Span.reset Span.roots)
  in
  let json = Sink.json (M.snapshot ()) spans in
  List.iter (check_contains json)
    [
      "\"schema\":\"pc-obs/1\"";
      "\"obs.test.json.c\":7";
      "\"obs.test.json.g\":3";
      "\"obs.test.json.h\":{\"count\":1";
      "{\"le\":\"inf\",\"count\":1}";
      "\"name\":\"sink-span\"";
      "\"children\":[]";
    ]

let test_json_string_escaping () =
  Alcotest.(check string) "plain" {|"abc"|} (Sink.json_string "abc");
  Alcotest.(check string) "quote" {|"a\"b"|} (Sink.json_string {|a"b|});
  Alcotest.(check string) "backslash" {|"a\\b"|} (Sink.json_string {|a\b|});
  Alcotest.(check string) "newline and tab" {|"a\nb\tc"|}
    (Sink.json_string "a\nb\tc");
  Alcotest.(check string) "control char" {|"a\u0001b"|}
    (Sink.json_string "a\001b");
  (* Round-trip through the repo's own parser: escaping and parsing must
     agree, or artefact names with quotes corrupt pc-obs/1 reports. *)
  let nasty = "sp\"an\\na\nme\001" in
  match Pc_util.Json.parse (Sink.json_string nasty) with
  | Ok (Pc_util.Json.Str s) ->
    Alcotest.(check string) "parse round-trip" nasty s
  | Ok _ -> Alcotest.fail "escaped string parsed as non-string"
  | Error msg -> Alcotest.failf "escaped string failed to parse: %s" msg

let test_json_non_finite_floats () =
  (* A histogram that observed a non-finite value must serialise its sum
     as null (JSON has no NaN/Infinity), and the document must still
     parse. *)
  let h = M.histogram ~buckets:[| 1.0 |] "obs.test.json.nonfinite" in
  M.observe h Float.infinity;
  let json = Sink.json (M.snapshot ()) [] in
  check_contains json "\"sum\":null";
  (match Pc_util.Json.parse json with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "report with null sum failed to parse: %s" msg);
  M.reset ()

let test_json_sink_quantiles () =
  let h = M.histogram ~buckets:[| 1.0; 2.0 |] "obs.test.json.quant" in
  for _ = 1 to 9 do M.observe h 0.5 done;
  M.observe h 1.5;
  let json = Sink.json (M.snapshot ()) [] in
  List.iter (check_contains json) [ "\"p50\":"; "\"p95\":"; "\"p99\":" ];
  M.reset ()

let test_write_json () =
  let path = Filename.temp_file "pc_obs_test" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Sink.write_json path (M.snapshot ()) [];
  let ic = open_in_bin path in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  check_contains contents "\"schema\":\"pc-obs/1\"";
  Alcotest.(check bool) "trailing newline" true
    (String.length contents > 0 && contents.[String.length contents - 1] = '\n')

(* --- baseline gating --- *)

let json_exn src =
  match Pc_util.Json.parse src with
  | Ok doc -> doc
  | Error msg -> Alcotest.failf "test fixture failed to parse: %s" msg

let test_baseline_metrics_gate () =
  let baseline =
    json_exn
      {|{"schema":"pc-obs/1","counters":{"a":10,"b":20},"gauges":{"g":5},"histograms":{"h":{"count":1,"sum":0.5,"buckets":[]}}}|}
  in
  Alcotest.(check (list string)) "identical reports pass" []
    (Pc_obs.Baseline.check_metrics ~baseline ~current:baseline);
  let drifted =
    json_exn
      {|{"schema":"pc-obs/1","counters":{"a":11,"b":20},"gauges":{"g":5},"histograms":{}}|}
  in
  Alcotest.(check int) "counter drift is one issue" 1
    (List.length (Pc_obs.Baseline.check_metrics ~baseline ~current:drifted));
  (* Histograms are timing (duration buckets) — never compared. *)
  let new_instrument =
    json_exn
      {|{"schema":"pc-obs/1","counters":{"a":10,"b":20,"c":1},"gauges":{"g":5},"histograms":{}}|}
  in
  (match Pc_obs.Baseline.check_metrics ~baseline ~current:new_instrument with
  | [ issue ] ->
    Alcotest.(check bool) "new instrument asks for regeneration" true
      (String.length issue > 0
      && String.sub issue 0 9 = "counter c")
  | issues -> Alcotest.failf "expected one issue, got %d" (List.length issues));
  let missing =
    json_exn {|{"schema":"pc-obs/1","counters":{"a":10},"gauges":{},"histograms":{}}|}
  in
  Alcotest.(check int) "missing counter and gauge reported" 2
    (List.length (Pc_obs.Baseline.check_metrics ~baseline ~current:missing));
  let wrong_schema =
    json_exn {|{"schema":"pc-obs/2","counters":{"a":10,"b":20},"gauges":{"g":5}}|}
  in
  Alcotest.(check bool) "schema mismatch reported" true
    (Pc_obs.Baseline.check_metrics ~baseline ~current:wrong_schema <> [])

let test_baseline_bench_gate () =
  let bench rows =
    json_exn
      (Printf.sprintf {|{"schema":"pc-bench/1","results":[%s]}|}
         (String.concat ","
            (List.map
               (fun (name, ms) ->
                 match ms with
                 | Some v ->
                   Printf.sprintf {|{"name":"%s","ms_per_run":%f}|} name v
                 | None -> Printf.sprintf {|{"name":"%s","ms_per_run":null}|} name)
               rows)))
  in
  let baseline =
    bench
      [
        ("fast", Some 1.0); ("small", Some 2.0); ("mid", Some 10.0);
        ("big", Some 50.0); ("slow", Some 100.0); ("nul", None);
      ]
  in
  Alcotest.(check (list string)) "identical timings pass" []
    (Pc_obs.Baseline.check_bench ~tolerance:0.2 ~baseline ~current:baseline ());
  (* A uniformly 3x slower machine shifts the median too: no issues. *)
  let slower_machine =
    bench
      [
        ("fast", Some 3.0); ("small", Some 6.0); ("mid", Some 30.0);
        ("big", Some 150.0); ("slow", Some 300.0); ("nul", None);
      ]
  in
  Alcotest.(check (list string)) "uniform machine slowdown passes" []
    (Pc_obs.Baseline.check_bench ~tolerance:0.2 ~baseline ~current:slower_machine ());
  (* One test doubling its cost while the others (and so the median)
     hold is flagged, and only it. *)
  let regressed =
    bench
      [
        ("fast", Some 2.0); ("small", Some 2.0); ("mid", Some 10.0);
        ("big", Some 50.0); ("slow", Some 100.0); ("nul", None);
      ]
  in
  (match
     Pc_obs.Baseline.check_bench ~tolerance:0.2 ~baseline ~current:regressed ()
   with
  | [ issue ] ->
    Alcotest.(check bool) "regression names the test" true
      (String.length issue >= 10 && String.sub issue 0 10 = "bench fast")
  | issues -> Alcotest.failf "expected one issue, got %d" (List.length issues));
  let missing = bench [ ("fast", Some 1.0); ("slow", Some 100.0) ] in
  Alcotest.(check bool) "missing entry reported" true
    (Pc_obs.Baseline.check_bench ~tolerance:0.2 ~baseline ~current:missing () <> [])

let test_baseline_bench_non_finite () =
  (* [1e999] parses as infinity through the repo's Json module; a report
     that smuggles one in must be flagged, not silently compared (every
     ratio against an infinite median passes or fails arbitrarily). *)
  let baseline =
    json_exn
      {|{"schema":"pc-bench/1","results":[{"name":"a","ms_per_run":1.0},{"name":"b","ms_per_run":2.0},{"name":"c","ms_per_run":3.0}]}|}
  in
  let poisoned =
    json_exn
      {|{"schema":"pc-bench/1","results":[{"name":"a","ms_per_run":1e999},{"name":"b","ms_per_run":2.0},{"name":"c","ms_per_run":3.0}]}|}
  in
  let issues =
    Pc_obs.Baseline.check_bench ~tolerance:0.2 ~baseline ~current:poisoned ()
  in
  Alcotest.(check bool) "infinite timing flagged" true
    (List.exists (fun i -> contains ~needle:"non-finite" i) issues);
  (* The poisoned row must also not poison the median: the finite rows
     still compare cleanly, so the only issues mention 'a'. *)
  Alcotest.(check bool) "finite rows unaffected" true
    (List.for_all (fun i -> contains ~needle:"a" i) issues)

let test_baseline_bench_zero_median () =
  (* Regression: a checked-in bench report whose median ms/run is 0
     (sub-resolution timings on a fast machine, or a trimmed report)
     used to blow up the median normalisation into inf/NaN and either
     mask every regression or flag them all.  The absolute floor makes
     the comparison degrade gracefully instead. *)
  let bench rows =
    json_exn
      (Printf.sprintf {|{"schema":"pc-bench/1","results":[%s]}|}
         (String.concat ","
            (List.map
               (fun (name, v) ->
                 Printf.sprintf {|{"name":"%s","ms_per_run":%f}|} name v)
               rows)))
  in
  let zeros = bench [ ("a", 0.0); ("b", 0.0); ("c", 0.0) ] in
  (* All-zero baseline vs itself: every row sits at the floor on both
     sides — noise, not signal — so the gate passes instead of erroring. *)
  Alcotest.(check (list string)) "zero-median report passes against itself" []
    (Pc_obs.Baseline.check_bench ~tolerance:0.2 ~baseline:zeros ~current:zeros ());
  (* A row exploding from 0 ms to a real cost is exactly the regression
     the floor must not hide. *)
  let blown = bench [ ("a", 5.0); ("b", 0.0); ("c", 0.0) ] in
  (match
     Pc_obs.Baseline.check_bench ~tolerance:0.2 ~baseline:zeros ~current:blown ()
   with
  | [ issue ] ->
    Alcotest.(check bool) "regression from zero names the test" true
      (String.length issue >= 7 && String.sub issue 0 7 = "bench a")
  | issues -> Alcotest.failf "expected one issue, got %d" (List.length issues));
  (* Sub-floor jitter on both sides carries no signal and is skipped,
     even when the relative change is large. *)
  let quiet_base = bench [ ("a", 0.0002); ("b", 1.0); ("c", 2.0) ] in
  let quiet_cur = bench [ ("a", 0.0009); ("b", 1.0); ("c", 2.0) ] in
  Alcotest.(check (list string)) "sub-floor jitter skipped" []
    (Pc_obs.Baseline.check_bench ~tolerance:0.2 ~baseline:quiet_base
       ~current:quiet_cur ());
  (* Negative medians still hard-error: that is a malformed report, not
     a fast machine. *)
  let negative = bench [ ("a", -1.0); ("b", -2.0); ("c", -3.0) ] in
  Alcotest.(check bool) "negative median still reported" true
    (List.exists
       (fun i -> contains ~needle:"negative" i)
       (Pc_obs.Baseline.check_bench ~tolerance:0.2 ~baseline:negative
          ~current:negative ()))

(* --- span trees under store-memoised pool tasks --- *)

let test_cached_task_emits_no_spans () =
  (* A pool task whose value is memoised in a Store must not replay the
     compute's span tree on a warm hit: the work did not happen again,
     so the timeline must not claim it did. *)
  with_enabled @@ fun () ->
  Fun.protect ~finally:Span.reset @@ fun () ->
  Span.reset ();
  let store = Pc_exec.Store.create ~name:"obs.test.memo" () in
  let keys = [ "k1"; "k2"; "k3" ] in
  let compute k =
    Pc_exec.Store.find_or_compute store k (fun () ->
        Span.with_ ("compute:" ^ k) (fun () -> String.length k))
  in
  (* Cold serial pass: every key computes under its span exactly once. *)
  ignore (Span.with_ "cold" (fun () -> Pool.map Pool.serial compute keys));
  (* Warm parallel pass: all hits — no compute spans may (re)appear. *)
  ignore
    (Span.with_ "warm" (fun () ->
         Pool.map (Pool.create ~num_domains:4) compute keys));
  let roots = Span.roots () in
  let tree_names root =
    let rec go acc s = List.fold_left go (Span.name s :: acc) (Span.children s) in
    go [] root
  in
  let find name =
    match List.find_opt (fun r -> Span.name r = name) roots with
    | Some r -> r
    | None -> Alcotest.failf "missing %S root" name
  in
  Alcotest.(check (list string)) "cold pass computes each key once"
    [ "cold"; "compute:k1"; "compute:k2"; "compute:k3" ]
    (List.sort compare (tree_names (find "cold")));
  Alcotest.(check (list string)) "warm pass emits no compute spans"
    [ "warm" ]
    (tree_names (find "warm"))

(* --- the invariant: observability never changes experiment output --- *)

let test_fig6_byte_identity () =
  let settings =
    {
      E.seed = 1;
      profile_instrs = 100_000;
      sim_instrs = 150_000;
      clone_dynamic = 30_000;
      benchmarks = [ "crc32"; "sha" ];
      sample = None;
      plan_cache = None;
      cache_onepass = false;
    }
  in
  let render () =
    E.clear_caches ();
    let ps = E.prepare settings in
    Format.asprintf "%a" E.pp_fig6 (E.base_runs settings ps)
  in
  let off = render () in
  let on_ =
    with_enabled (fun () -> Fun.protect ~finally:Span.reset render)
  in
  Alcotest.(check string) "fig6 byte-identical with observability on" off on_

let () =
  Alcotest.run "pc_obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "shared name" `Quick test_same_name_same_instrument;
          Alcotest.test_case "kind mismatch" `Quick test_kind_mismatch;
          Alcotest.test_case "gauge" `Quick test_gauge;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "bad buckets" `Quick test_histogram_bad_buckets;
          Alcotest.test_case "snapshot + diff" `Quick test_snapshot_sorted_and_diff;
          Alcotest.test_case "diff keeps after-only instruments" `Quick
            test_diff_after_only_instruments;
          Alcotest.test_case "diff survives a histogram layout change" `Quick
            test_diff_mismatched_histogram_layout;
          Alcotest.test_case "reset" `Quick test_reset;
          Alcotest.test_case "hist_quantile" `Quick test_hist_quantile;
        ] );
      ( "concurrency",
        [ QCheck_alcotest.to_alcotest ~long:false test_no_lost_counts ] );
      ( "spans",
        [
          Alcotest.test_case "disabled records nothing" `Quick
            test_span_disabled_records_nothing;
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "pool adoption" `Quick test_span_pool_adoption;
          Alcotest.test_case "cached store task emits no spans" `Quick
            test_cached_task_emits_no_spans;
        ] );
      ( "sinks",
        [
          Alcotest.test_case "json schema" `Quick test_json_sink;
          Alcotest.test_case "json string escaping" `Quick
            test_json_string_escaping;
          Alcotest.test_case "non-finite floats serialise as null" `Quick
            test_json_non_finite_floats;
          Alcotest.test_case "histogram quantiles in json" `Quick
            test_json_sink_quantiles;
          Alcotest.test_case "write_json" `Quick test_write_json;
        ] );
      ( "baselines",
        [
          Alcotest.test_case "metrics gate" `Quick test_baseline_metrics_gate;
          Alcotest.test_case "bench gate" `Quick test_baseline_bench_gate;
          Alcotest.test_case "bench gate rejects non-finite timings" `Quick
            test_baseline_bench_non_finite;
          Alcotest.test_case "bench gate survives zero medians" `Quick
            test_baseline_bench_zero_median;
        ] );
      ( "invariant",
        [
          Alcotest.test_case "fig6 byte-identity" `Slow test_fig6_byte_identity;
        ] );
    ]
