(* Tests for pc_isa (instruction metadata, assembler, program validation)
   and pc_funcsim (memory, machine execution). *)

module I = Pc_isa.Instr
module Reg = Pc_isa.Reg
module Asm = Pc_isa.Asm
module Program = Pc_isa.Program
module Memory = Pc_funcsim.Memory
module Machine = Pc_funcsim.Machine

(* --- instruction metadata --- *)

let test_classify () =
  let checks =
    [
      (I.Alu (I.Add, 1, 2, 3), I.C_int_alu);
      (I.Li (1, 5L), I.C_int_alu);
      (I.Mul (1, 2, 3), I.C_int_mul);
      (I.Div (1, 2, 3), I.C_int_div);
      (I.Rem (1, 2, 3), I.C_int_div);
      (I.Falu (I.Fadd, 1, 2, 3), I.C_fp_alu);
      (I.Fmov (1, 2), I.C_fp_alu);
      (I.Fmul (1, 2, 3), I.C_fp_mul);
      (I.Fdiv (1, 2, 3), I.C_fp_div);
      (I.Load (1, 2, 0), I.C_load);
      (I.Fload (1, 2, 0), I.C_load);
      (I.Store (1, 2, 0), I.C_store);
      (I.Fstore (1, 2, 0), I.C_store);
      (I.Br (I.Eq_z, 1, I.Abs 0), I.C_branch);
      (I.Jmp (I.Abs 0), I.C_jump);
      (I.Jr 26, I.C_jump);
      (I.Call (I.Abs 0), I.C_jump);
      (I.Halt, I.C_other);
    ]
  in
  List.iter
    (fun (instr, expected) ->
      Alcotest.(check string)
        (Format.asprintf "%a" I.pp instr)
        (I.class_name expected)
        (I.class_name (I.classify instr)))
    checks

let test_class_index_roundtrip () =
  for i = 0 to I.class_count - 1 do
    Alcotest.(check int) "roundtrip" i (I.class_index (I.class_of_index i))
  done

let test_reads_writes () =
  Alcotest.(check (list int)) "alu reads" [ 2; 3 ] (I.reads (I.Alu (I.Add, 1, 2, 3)));
  Alcotest.(check (option int)) "alu writes" (Some 1) (I.writes (I.Alu (I.Add, 1, 2, 3)));
  Alcotest.(check (list int)) "fp reads are offset" [ 34; 35 ]
    (I.reads (I.Falu (I.Fadd, 1, 2, 3)));
  Alcotest.(check (option int)) "fp writes are offset" (Some 33)
    (I.writes (I.Falu (I.Fadd, 1, 2, 3)));
  Alcotest.(check (list int)) "store reads value and base" [ 4; 5 ]
    (I.reads (I.Store (4, 5, 8)));
  Alcotest.(check (option int)) "store writes nothing" None (I.writes (I.Store (4, 5, 8)));
  Alcotest.(check (option int)) "call writes ra" (Some Reg.ra) (I.writes (I.Call (I.Abs 0)))

(* --- assembler --- *)

let test_assemble_resolves_labels () =
  let p =
    Asm.assemble ~name:"t"
      [
        Asm.Ins (I.Jmp (I.Label "end"));
        Asm.Label "mid";
        Asm.Ins (I.Li (1, 1L));
        Asm.Label "end";
        Asm.Ins I.Halt;
      ]
  in
  (match p.Program.code.(0) with
  | I.Jmp (I.Abs 2) -> ()
  | other -> Alcotest.failf "unexpected: %s" (Format.asprintf "%a" I.pp other));
  Alcotest.(check int) "length" 3 (Program.length p)

let test_assemble_duplicate_label () =
  Alcotest.(check bool) "duplicate label rejected" true
    (try
       ignore (Asm.assemble ~name:"t" [ Asm.Label "a"; Asm.Label "a"; Asm.Ins I.Halt ]);
       false
     with Invalid_argument _ -> true)

let test_assemble_undefined_label () =
  Alcotest.(check bool) "undefined label rejected" true
    (try
       ignore (Asm.assemble ~name:"t" [ Asm.Ins (I.Jmp (I.Label "nowhere")) ]);
       false
     with Invalid_argument _ -> true)

let test_program_rejects_out_of_range_target () =
  Alcotest.(check bool) "out-of-range target rejected" true
    (try
       ignore (Program.v ~name:"t" ~code:[| I.Jmp (I.Abs 99) |] ~data:[] ~data_bytes:0);
       false
     with Invalid_argument _ -> true)

let test_program_rejects_bad_data () =
  Alcotest.(check bool) "unaligned data rejected" true
    (try
       ignore
         (Program.v ~name:"t" ~code:[| I.Halt |]
            ~data:[ (Program.data_base + 4, 0L) ]
            ~data_bytes:64);
       false
     with Invalid_argument _ -> true)

(* --- memory --- *)

let test_memory_rw () =
  let m = Memory.create () in
  Alcotest.(check int64) "uninitialised reads zero" 0L (Memory.read m 0x1000);
  Memory.write m 0x1000 42L;
  Alcotest.(check int64) "read back" 42L (Memory.read m 0x1000);
  Memory.write m 0x7F_0000 7L;
  Alcotest.(check int64) "sparse pages" 7L (Memory.read m 0x7F_0000);
  Alcotest.(check int64) "neighbour untouched" 0L (Memory.read m 0x1008)

let test_memory_floats () =
  let m = Memory.create () in
  Memory.write_float m 0x2000 3.14159;
  Alcotest.(check (float 0.0)) "float roundtrip" 3.14159 (Memory.read_float m 0x2000)

let test_memory_alignment () =
  let m = Memory.create () in
  Alcotest.(check bool) "unaligned rejected" true
    (try
       ignore (Memory.read m 0x1001);
       false
     with Invalid_argument _ -> true)

(* --- machine execution --- *)

let run_program items =
  let p = Asm.assemble ~name:"t" items in
  let m = Machine.load p in
  let _ = Machine.run m (fun _ -> ()) in
  m

let test_machine_arith () =
  let m =
    run_program
      [
        Asm.Ins (I.Li (1, 20L));
        Asm.Ins (I.Li (2, 22L));
        Asm.Ins (I.Alu (I.Add, 3, 1, 2));
        Asm.Ins I.Halt;
      ]
  in
  Alcotest.(check int64) "20+22" 42L (Machine.ireg m 3)

let test_machine_r0_is_zero () =
  let m = run_program [ Asm.Ins (I.Li (0, 99L)); Asm.Ins I.Halt ] in
  Alcotest.(check int64) "write to r0 discarded" 0L (Machine.ireg m 0)

let test_machine_div_by_zero () =
  let m =
    run_program
      [
        Asm.Ins (I.Li (1, 10L));
        Asm.Ins (I.Div (2, 1, 0));
        Asm.Ins (I.Rem (3, 1, 0));
        Asm.Ins I.Halt;
      ]
  in
  Alcotest.(check int64) "div by zero yields 0" 0L (Machine.ireg m 2);
  Alcotest.(check int64) "rem by zero yields 0" 0L (Machine.ireg m 3)

let test_machine_loop () =
  (* sum 1..10 *)
  let m =
    run_program
      [
        Asm.Ins (I.Li (1, 0L)) (* sum *);
        Asm.Ins (I.Li (2, 10L)) (* i *);
        Asm.Label "loop";
        Asm.Ins (I.Alu (I.Add, 1, 1, 2));
        Asm.Ins (I.Alui (I.Add, 2, 2, -1));
        Asm.Ins (I.Br (I.Gt_z, 2, I.Label "loop"));
        Asm.Ins I.Halt;
      ]
  in
  Alcotest.(check int64) "sum 1..10" 55L (Machine.ireg m 1)

let test_machine_call_ret () =
  let m =
    run_program
      [
        Asm.Ins (I.Call (I.Label "double"));
        Asm.Ins I.Halt;
        Asm.Label "double";
        Asm.Ins (I.Li (1, 21L));
        Asm.Ins (I.Alu (I.Add, 1, 1, 1));
        Asm.Ins (I.Jr Reg.ra);
      ]
  in
  Alcotest.(check int64) "call/return" 42L (Machine.ireg m 1)

let test_machine_memory_ops () =
  let m =
    run_program
      [
        Asm.Ins (I.Li (1, Int64.of_int Program.data_base));
        Asm.Ins (I.Li (2, 123L));
        Asm.Ins (I.Store (2, 1, 16));
        Asm.Ins (I.Load (3, 1, 16));
        Asm.Ins I.Halt;
      ]
  in
  Alcotest.(check int64) "store/load roundtrip" 123L (Machine.ireg m 3)

let test_machine_float_ops () =
  let m =
    run_program
      [
        Asm.Ins (I.Fli (1, 1.5));
        Asm.Ins (I.Fli (2, 2.25));
        Asm.Ins (I.Falu (I.Fadd, 3, 1, 2));
        Asm.Ins (I.Fmul (4, 1, 2));
        Asm.Ins (I.Fcmp (I.Fcmp_lt, 5, 1, 2));
        Asm.Ins I.Halt;
      ]
  in
  Alcotest.(check (float 1e-12)) "fadd" 3.75 (Machine.freg m 3);
  Alcotest.(check (float 1e-12)) "fmul" 3.375 (Machine.freg m 4);
  Alcotest.(check int64) "fcmp" 1L (Machine.ireg m 5)

let test_event_stream () =
  let p =
    Asm.assemble ~name:"t"
      [
        Asm.Ins (I.Li (1, Int64.of_int Program.data_base));
        Asm.Ins (I.Load (2, 1, 0));
        Asm.Ins (I.Br (I.Eq_z, 0, I.Label "next")) (* r0 = 0: taken *);
        Asm.Label "next";
        Asm.Ins I.Halt;
      ]
  in
  let m = Machine.load p in
  let events = ref [] in
  let _ =
    Machine.run m (fun ev ->
        events := (ev.Machine.pc, ev.Machine.mem_addr, ev.Machine.is_branch, ev.Machine.taken) :: !events)
  in
  let events = List.rev !events in
  Alcotest.(check int) "4 events" 4 (List.length events);
  (match events with
  | [ (0, -1, false, _); (1, addr, false, _); (2, -1, true, taken); (3, -1, false, _) ] ->
    Alcotest.(check int) "load address" Program.data_base addr;
    Alcotest.(check bool) "branch on zero register taken" true taken
  | _ -> Alcotest.fail "unexpected event shapes");
  Alcotest.(check int) "instruction count" 4 (Machine.instruction_count m)

let test_run_budget () =
  (* An infinite loop must stop at the budget. *)
  let p =
    Asm.assemble ~name:"t" [ Asm.Label "spin"; Asm.Ins (I.Jmp (I.Label "spin")) ]
  in
  let m = Machine.load p in
  let n = Machine.run ~max_instrs:1000 m (fun _ -> ()) in
  Alcotest.(check int) "budget respected" 1000 n;
  Alcotest.(check bool) "not halted" false (Machine.halted m)

let test_machine_shift_semantics () =
  let m =
    run_program
      [
        Asm.Ins (I.Li (1, -16L));
        Asm.Ins (I.Alui (I.Sra, 2, 1, 2));
        Asm.Ins (I.Alui (I.Srl, 3, 1, 60));
        Asm.Ins (I.Alui (I.Sll, 4, 1, 1));
        Asm.Ins I.Halt;
      ]
  in
  Alcotest.(check int64) "sra" (-4L) (Machine.ireg m 2);
  Alcotest.(check int64) "srl" 15L (Machine.ireg m 3);
  Alcotest.(check int64) "sll" (-32L) (Machine.ireg m 4)

let () =
  Alcotest.run "pc_isa"
    [
      ( "instr",
        [
          Alcotest.test_case "classification" `Quick test_classify;
          Alcotest.test_case "class index roundtrip" `Quick test_class_index_roundtrip;
          Alcotest.test_case "reads/writes metadata" `Quick test_reads_writes;
        ] );
      ( "asm",
        [
          Alcotest.test_case "label resolution" `Quick test_assemble_resolves_labels;
          Alcotest.test_case "duplicate labels rejected" `Quick
            test_assemble_duplicate_label;
          Alcotest.test_case "undefined labels rejected" `Quick
            test_assemble_undefined_label;
          Alcotest.test_case "out-of-range targets rejected" `Quick
            test_program_rejects_out_of_range_target;
          Alcotest.test_case "bad data rejected" `Quick test_program_rejects_bad_data;
        ] );
      ( "memory",
        [
          Alcotest.test_case "read/write" `Quick test_memory_rw;
          Alcotest.test_case "float views" `Quick test_memory_floats;
          Alcotest.test_case "alignment enforced" `Quick test_memory_alignment;
        ] );
      ( "machine",
        [
          Alcotest.test_case "arithmetic" `Quick test_machine_arith;
          Alcotest.test_case "r0 hardwired to zero" `Quick test_machine_r0_is_zero;
          Alcotest.test_case "division by zero" `Quick test_machine_div_by_zero;
          Alcotest.test_case "loop with branch" `Quick test_machine_loop;
          Alcotest.test_case "call and return" `Quick test_machine_call_ret;
          Alcotest.test_case "loads and stores" `Quick test_machine_memory_ops;
          Alcotest.test_case "float operations" `Quick test_machine_float_ops;
          Alcotest.test_case "event stream contents" `Quick test_event_stream;
          Alcotest.test_case "run budget" `Quick test_run_budget;
          Alcotest.test_case "shift semantics" `Quick test_machine_shift_semantics;
        ] );
    ]
