(* Tests for Pc_stats.Stats: correlation, rankings, error metrics. *)

module Stats = Pc_stats.Stats

let feq ?(eps = 1e-9) a b = abs_float (a -. b) < eps

let check_f ?eps msg expected got =
  if not (feq ?eps expected got) then
    Alcotest.failf "%s: expected %f, got %f" msg expected got

let test_mean_stddev () =
  check_f "mean" 2.5 (Stats.mean [| 1.0; 2.0; 3.0; 4.0 |]);
  check_f "stddev of constant" 0.0 (Stats.stddev [| 5.0; 5.0; 5.0 |]);
  check_f "stddev" (sqrt 1.25) (Stats.stddev [| 1.0; 2.0; 3.0; 4.0 |])

let test_pearson_perfect () =
  let x = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  let y = Array.map (fun v -> (3.0 *. v) +. 1.0) x in
  check_f "perfect positive" 1.0 (Stats.pearson x y);
  let z = Array.map (fun v -> -.v) x in
  check_f "perfect negative" (-1.0) (Stats.pearson x z)

let test_pearson_constant () =
  check_f "constant series" 0.0 (Stats.pearson [| 1.0; 1.0; 1.0 |] [| 1.0; 2.0; 3.0 |])

let test_pearson_symmetry () =
  let x = [| 1.0; 5.0; 2.0; 8.0; 3.0 |] and y = [| 2.0; 4.0; 4.0; 9.0; 1.0 |] in
  check_f "symmetric" (Stats.pearson x y) (Stats.pearson y x)

let test_pearson_known_value () =
  (* Hand-computed example. *)
  let x = [| 1.0; 2.0; 3.0 |] and y = [| 1.0; 2.0; 4.0 |] in
  (* cov = (0*(-4/3) + ... ) ; direct computation gives r = 3/sqrt(2*4.6667) *)
  let r = Stats.pearson x y in
  check_f ~eps:1e-6 "known r" 0.98198 (Float.round (r *. 100000.0) /. 100000.0)

let test_rankings () =
  Alcotest.(check (array (float 1e-9)))
    "simple ranking" [| 2.0; 1.0; 3.0 |]
    (Stats.rankings [| 5.0; 1.0; 9.0 |]);
  Alcotest.(check (array (float 1e-9)))
    "ties get average rank" [| 1.5; 1.5; 3.0 |]
    (Stats.rankings [| 2.0; 2.0; 7.0 |])

let test_spearman_monotone () =
  let x = [| 1.0; 2.0; 3.0; 4.0 |] in
  let y = [| 1.0; 8.0; 27.0; 64.0 |] in
  (* nonlinear but monotone: spearman = 1, pearson < 1 *)
  check_f "spearman of monotone data" 1.0 (Stats.spearman x y);
  Alcotest.(check bool) "pearson below 1" true (Stats.pearson x y < 1.0)

let test_abs_rel_error () =
  check_f "10%% error" 0.1 (Stats.abs_rel_error ~actual:10.0 ~predicted:11.0);
  check_f "symmetric under sign" 0.1 (Stats.abs_rel_error ~actual:10.0 ~predicted:9.0)

let test_relative_design_error () =
  (* Clone tracks the trend perfectly: both speed up by 2x. *)
  check_f "perfect trend" 0.0
    (Stats.relative_design_error ~real_base:1.0 ~real_new:2.0 ~synth_base:1.5
       ~synth_new:3.0);
  (* Clone misses the trend: real 2x, clone 1.5x -> 25% error. *)
  check_f "missed trend" 0.25
    (Stats.relative_design_error ~real_base:1.0 ~real_new:2.0 ~synth_base:1.0
       ~synth_new:1.5)

let test_percentile () =
  let v = [| 10.0; 20.0; 30.0; 40.0 |] in
  check_f "p0" 10.0 (Stats.percentile v 0.0);
  check_f "p100" 40.0 (Stats.percentile v 100.0);
  check_f "p50" 25.0 (Stats.percentile v 50.0)

let test_histogram () =
  let h = Stats.Histogram.create ~bounds:[| 1; 2; 4; 8 |] in
  List.iter (Stats.Histogram.add h) [ 1; 1; 2; 3; 4; 5; 8; 9; 100 ];
  Alcotest.(check (array int)) "counts" [| 2; 1; 2; 2; 2 |] (Stats.Histogram.counts h);
  Alcotest.(check int) "total" 9 (Stats.Histogram.total h);
  let fr = Stats.Histogram.fractions h in
  check_f "fractions sum to 1" 1.0 (Array.fold_left ( +. ) 0.0 fr)

let test_histogram_paper_boundaries () =
  (* The paper buckets dependency distances as 1, 2, 4, 6, 8, 16, 32, >32
     with inclusive upper bounds: a distance of exactly 8 belongs to the
     bucket labelled 8, not the next one up.  Pin every boundary so a
     change in inclusivity cannot slip through. *)
  let bounds = Pc_profile.Profile.dep_bounds in
  Alcotest.(check (array int)) "paper bounds" [| 1; 2; 4; 6; 8; 16; 32 |] bounds;
  let h = Stats.Histogram.create ~bounds in
  let expect =
    [
      (1, 0); (2, 1); (3, 2); (4, 2); (5, 3); (6, 3); (7, 4); (8, 4);
      (9, 5); (16, 5); (17, 6); (32, 6); (33, 7); (1000, 7);
    ]
  in
  List.iter
    (fun (x, bucket) ->
      Alcotest.(check int)
        (Printf.sprintf "distance %d -> bucket %d" x bucket)
        bucket
        (Stats.Histogram.bucket_of h x))
    expect;
  (* bucket_of and add must agree. *)
  List.iter
    (fun (x, bucket) ->
      let h' = Stats.Histogram.create ~bounds in
      Stats.Histogram.add h' x;
      Alcotest.(check int)
        (Printf.sprintf "add %d counts bucket %d" x bucket)
        1
        (Stats.Histogram.counts h').(bucket))
    expect

let test_histogram_merge () =
  let h1 = Stats.Histogram.create ~bounds:[| 1; 2 |] in
  let h2 = Stats.Histogram.create ~bounds:[| 1; 2 |] in
  Stats.Histogram.add h1 1;
  Stats.Histogram.add_many h2 2 5;
  let m = Stats.Histogram.merge h1 h2 in
  Alcotest.(check (array int)) "merged" [| 1; 5; 0 |] (Stats.Histogram.counts m);
  Alcotest.(check int) "merged total" 6 (Stats.Histogram.total m)

let test_histogram_empty_fractions () =
  let h = Stats.Histogram.create ~bounds:[| 1; 2 |] in
  Alcotest.(check (array (float 0.0))) "empty fractions" [| 0.0; 0.0; 0.0 |]
    (Stats.Histogram.fractions h)

let test_pearson_invariances () =
  let x = [| 1.0; 5.0; 2.0; 8.0; 3.0 |] and y = [| 2.0; 4.0; 4.0; 9.0; 1.0 |] in
  let r = Stats.pearson x y in
  (* scale and shift invariance *)
  let x' = Array.map (fun v -> (3.0 *. v) +. 11.0) x in
  check_f ~eps:1e-9 "affine invariant" r (Stats.pearson x' y);
  let xn = Array.map (fun v -> -.v) x in
  check_f ~eps:1e-9 "negation flips sign" (-.r) (Stats.pearson xn y)

let test_mean_rejects_empty () =
  Alcotest.(check bool) "empty mean rejected" true
    (match Stats.mean [||] with _ -> false | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "mismatched pearson rejected" true
    (match Stats.pearson [| 1.0 |] [| 1.0; 2.0 |] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_design_error_rejects_zero () =
  Alcotest.(check bool) "zero base rejected" true
    (match
       Stats.relative_design_error ~real_base:0.0 ~real_new:1.0 ~synth_base:1.0
         ~synth_new:1.0
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

let qcheck_pearson_bounds =
  QCheck.Test.make ~name:"pearson stays in [-1, 1]" ~count:200
    QCheck.(pair (list_of_size Gen.(int_range 2 20) (float_bound_inclusive 100.0))
              (list_of_size Gen.(int_range 2 20) (float_bound_inclusive 100.0)))
    (fun (xs, ys) ->
      let n = min (List.length xs) (List.length ys) in
      QCheck.assume (n >= 2);
      let x = Array.of_list (List.filteri (fun i _ -> i < n) xs) in
      let y = Array.of_list (List.filteri (fun i _ -> i < n) ys) in
      let r = Stats.pearson x y in
      r >= -1.0000001 && r <= 1.0000001)

let qcheck_rankings_are_permutation_sums =
  QCheck.Test.make ~name:"rankings sum to n(n+1)/2" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 30) (float_bound_inclusive 50.0))
    (fun xs ->
      let v = Array.of_list xs in
      let n = Array.length v in
      let sum = Array.fold_left ( +. ) 0.0 (Stats.rankings v) in
      feq ~eps:1e-6 sum (float_of_int (n * (n + 1)) /. 2.0))

let () =
  Alcotest.run "pc_stats"
    [
      ( "stats",
        [
          Alcotest.test_case "mean and stddev" `Quick test_mean_stddev;
          Alcotest.test_case "pearson perfect correlation" `Quick test_pearson_perfect;
          Alcotest.test_case "pearson of constant series" `Quick test_pearson_constant;
          Alcotest.test_case "pearson symmetry" `Quick test_pearson_symmetry;
          Alcotest.test_case "pearson known value" `Quick test_pearson_known_value;
          Alcotest.test_case "rankings with ties" `Quick test_rankings;
          Alcotest.test_case "spearman of monotone data" `Quick test_spearman_monotone;
          Alcotest.test_case "absolute relative error" `Quick test_abs_rel_error;
          Alcotest.test_case "relative design error" `Quick test_relative_design_error;
          Alcotest.test_case "percentile interpolation" `Quick test_percentile;
          Alcotest.test_case "histogram bucketing" `Quick test_histogram;
          Alcotest.test_case "histogram paper bucket boundaries" `Quick
            test_histogram_paper_boundaries;
          Alcotest.test_case "histogram merge" `Quick test_histogram_merge;
          Alcotest.test_case "histogram empty fractions" `Quick
            test_histogram_empty_fractions;
          Alcotest.test_case "pearson invariances" `Quick test_pearson_invariances;
          Alcotest.test_case "empty inputs rejected" `Quick test_mean_rejects_empty;
          Alcotest.test_case "design error rejects zero base" `Quick
            test_design_error_rejects_zero;
          QCheck_alcotest.to_alcotest qcheck_pearson_bounds;
          QCheck_alcotest.to_alcotest qcheck_rankings_are_permutation_sums;
        ] );
    ]
