(* Differential fuzzing of the Kc compiler: random structured programs
   (nested loops, conditionals, array traffic, helper-function calls) must
   behave identically under the reference interpreter and the compiled
   SRISC binary, including final global-array contents. *)

open Pc_kc.Ast
module Interp = Pc_kc.Interp
module Compile = Pc_kc.Compile
module Machine = Pc_funcsim.Machine
module Memory = Pc_funcsim.Memory
module Rng = Pc_util.Rng

let array_size = 32

(* --- random program generation --- *)

let int_locals = [ "a"; "b"; "c"; "d" ]
let loop_vars = [ "i1"; "i2" ]
let fp_locals = [ "x"; "y" ]

let gen_iexpr rng depth =
  let rec go depth =
    if depth <= 0 || Rng.int rng 3 = 0 then
      match Rng.int rng 3 with
      | 0 -> i (Rng.int rng 2001 - 1000)
      | 1 -> v (Rng.pick rng (Array.of_list (int_locals @ loop_vars)))
      | _ -> ld "g" (Bin (Mod, Bin (Band, go 0, i 0x7FFFFFFF), i array_size))
    else
      let a = go (depth - 1) and b = go (depth - 1) in
      match Rng.int rng 10 with
      | 0 -> a +: b
      | 1 -> a -: b
      | 2 -> a *: b
      | 3 -> a /: b
      | 4 -> a %: b
      | 5 -> a &: b
      | 6 -> a |: b
      | 7 -> Bin (Bxor, a, b)
      | 8 -> a <: b
      | _ -> a =: b
  in
  go depth

(* a guaranteed-in-bounds index *)
let gen_index rng depth =
  Bin (Mod, Bin (Band, gen_iexpr rng depth, i 0x7FFFFFFF), i array_size)

let rec gen_stmt rng depth =
  match Rng.int rng (if depth <= 0 then 3 else 6) with
  | 0 -> set (Rng.pick rng (Array.of_list int_locals)) (gen_iexpr rng 2)
  | 1 -> st "g" (gen_index rng 1) (gen_iexpr rng 2)
  | 2 ->
    set (Rng.pick rng (Array.of_list int_locals))
      (ld "g" (gen_index rng 1) +: call "helper" [ gen_iexpr rng 1 ])
  | 3 ->
    if_ (gen_iexpr rng 1)
      (gen_block rng (depth - 1) (1 + Rng.int rng 2))
      (if Rng.bool rng then gen_block rng (depth - 1) 1 else [])
  | 4 ->
    let var = Rng.pick rng (Array.of_list loop_vars) in
    for_ var (i 0) (i (1 + Rng.int rng 6)) (gen_block rng (depth - 1) (1 + Rng.int rng 2))
  | _ ->
    set (Rng.pick rng (Array.of_list fp_locals))
      (I2f (gen_iexpr rng 1) +: v (Rng.pick rng (Array.of_list fp_locals)))

and gen_block rng depth n = List.init n (fun _ -> gen_stmt rng depth)

let gen_prog rng =
  let body = gen_block rng 3 (3 + Rng.int rng 5) in
  let checksum =
    [
      for_ "i1" (i 0) (i array_size)
        [ set "a" ((v "a" *: i 31) +: ld "g" (v "i1") &: i 0xFFFFFFFF) ];
      ret (v "a" +: F2i (v "x" *: f 7.0) +: F2i (v "y"));
    ]
  in
  {
    globals =
      [ garr "g" ~init:(Pc_workloads.Inputs.ints ~seed:9 ~n:array_size ~bound:1000) array_size ];
    funs =
      [
        fn "helper" ~params:[ ("n", I) ] ~locals:[ ("t", I) ]
          [
            set "t" (v "n" &: i 255);
            if_ (v "t" >: i 128) [ ret (v "t" -: i 128) ] [];
            ret (v "t" +: i 1);
          ];
        fn "main"
          ~locals:
            (List.map (fun n -> (n, I)) (int_locals @ loop_vars)
            @ List.map (fun n -> (n, F)) fp_locals)
          (body @ checksum);
      ];
  }

(* --- the differential property --- *)

let agree prog =
  match Interp.run ~max_steps:2_000_000 prog with
  | exception Interp.Runtime_error _ -> true (* e.g. step budget; skip *)
  | ir -> (
    let compiled = Compile.compile ~name:"fuzz" prog in
    let m = Machine.load compiled in
    let _ = Machine.run ~max_instrs:10_000_000 m (fun _ -> ()) in
    if not (Machine.halted m) then false
    else if Machine.ireg m Pc_isa.Reg.ret <> ir.Interp.return_value then false
    else begin
      (* compare the global array word by word *)
      let offsets = Compile.global_offsets prog in
      let off = List.assoc "g" offsets in
      let interp_arr = List.assoc "g" ir.Interp.globals in
      let mem = Machine.memory m in
      let ok = ref true in
      for idx = 0 to array_size - 1 do
        let addr = Pc_isa.Program.data_base + off + (8 * idx) in
        if Memory.read mem addr <> interp_arr.(idx) then ok := false
      done;
      !ok
    end)

let qcheck_structured_programs =
  QCheck.Test.make ~name:"random structured Kc programs: interp = compiled" ~count:150
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      agree (gen_prog rng))

let test_fixed_seeds () =
  (* a deterministic sweep, independent of qcheck's sampling *)
  for seed = 1 to 100 do
    let rng = Rng.create (seed * 7919) in
    if not (agree (gen_prog rng)) then
      Alcotest.failf "divergence at seed %d" (seed * 7919)
  done

let () =
  Alcotest.run "kc_random"
    [
      ( "fuzz",
        [
          Alcotest.test_case "100 fixed seeds" `Slow test_fixed_seeds;
          QCheck_alcotest.to_alcotest qcheck_structured_programs;
        ] );
    ]
