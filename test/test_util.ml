(* Tests for Pc_util.Rng (determinism, ranges, distribution sanity)
   and Pc_util.Json (the artefact-schema parser). *)

module Rng = Pc_util.Rng
module Json = Pc_util.Json

let test_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different seeds differ" false
    (Rng.bits64 a = Rng.bits64 b)

let test_copy_independent () =
  let a = Rng.create 7 in
  let _ = Rng.bits64 a in
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues the stream" (Rng.bits64 a) (Rng.bits64 b);
  (* advancing one does not advance the other *)
  let va = Rng.bits64 a in
  let vb = Rng.bits64 b in
  Alcotest.(check int64) "streams stay in lockstep from equal states" va vb

let test_int_range () =
  let t = Rng.create 3 in
  for _ = 1 to 10_000 do
    let v = Rng.int t 17 in
    if v < 0 || v >= 17 then Alcotest.fail "Rng.int out of range"
  done

let test_int_rejects_nonpositive () =
  let t = Rng.create 3 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int t 0))

let test_float_range () =
  let t = Rng.create 4 in
  for _ = 1 to 10_000 do
    let v = Rng.float t 2.5 in
    if v < 0.0 || v >= 2.5 then Alcotest.fail "Rng.float out of range"
  done

let test_int_uniformish () =
  let t = Rng.create 5 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let v = Rng.int t 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iter
    (fun c ->
      let frac = float_of_int c /. float_of_int n in
      if frac < 0.08 || frac > 0.12 then
        Alcotest.failf "bucket fraction %f too far from 0.1" frac)
    buckets

let test_sample_cdf () =
  let t = Rng.create 6 in
  let cdf = [| 0.25; 0.5; 1.0 |] in
  let counts = Array.make 3 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let i = Rng.sample_cdf t cdf in
    counts.(i) <- counts.(i) + 1
  done;
  let frac i = float_of_int counts.(i) /. float_of_int n in
  Alcotest.(check bool) "bucket 0 ~ 0.25" true (abs_float (frac 0 -. 0.25) < 0.02);
  Alcotest.(check bool) "bucket 1 ~ 0.25" true (abs_float (frac 1 -. 0.25) < 0.02);
  Alcotest.(check bool) "bucket 2 ~ 0.5" true (abs_float (frac 2 -. 0.5) < 0.02)

let test_sample_cdf_degenerate () =
  let t = Rng.create 8 in
  (* A leading zero-probability bucket must never be sampled. *)
  let cdf = [| 0.0; 1.0 |] in
  for _ = 1 to 1000 do
    let i = Rng.sample_cdf t cdf in
    if i = 0 then Alcotest.fail "sampled a zero-probability bucket"
  done

let test_sample_cdf_unnormalised () =
  (* Float accumulation often leaves the final CDF entry below 1.0; the
     last bucket must not absorb the missing mass. *)
  let t = Rng.create 11 in
  let cdf = [| 0.3; 0.6; 0.9 |] in
  let counts = Array.make 3 0 in
  let n = 90_000 in
  for _ = 1 to n do
    let i = Rng.sample_cdf t cdf in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iteri
    (fun i c ->
      let frac = float_of_int c /. float_of_int n in
      if abs_float (frac -. (1.0 /. 3.0)) > 0.02 then
        Alcotest.failf "bucket %d fraction %f too far from 1/3" i frac)
    counts

let test_sample_cdf_overfull () =
  (* A CDF that accumulated slightly past 1.0 must keep the last bucket
     reachable instead of under-weighting everything else. *)
  let t = Rng.create 12 in
  let cdf = [| 0.5; 1.0 +. 1e-12 |] in
  let seen_last = ref false in
  for _ = 1 to 1000 do
    if Rng.sample_cdf t cdf = 1 then seen_last := true
  done;
  Alcotest.(check bool) "last bucket reachable" true !seen_last

let test_sample_cdf_all_zero () =
  let t = Rng.create 13 in
  Alcotest.(check bool) "all-zero cdf rejected" true
    (match Rng.sample_cdf t [| 0.0; 0.0; 0.0 |] with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "empty cdf rejected" true
    (match Rng.sample_cdf t [||] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_int_large_bound_range () =
  let t = Rng.create 14 in
  let bound = (1 lsl 62) - 7 in
  for _ = 1 to 10_000 do
    let v = Rng.int t bound in
    if v < 0 || v >= bound then Alcotest.fail "Rng.int out of range for huge bound"
  done

let test_int_large_bound_unbiased () =
  (* bound = 3 * 2^60: with [v mod bound] over 62 bits the low third of
     the range is drawn twice as often, dragging the mean ~17% low.
     Rejection sampling keeps the mean at bound/2. *)
  let t = Rng.create 15 in
  let bound = 3 * (1 lsl 60) in
  let n = 100_000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. float_of_int (Rng.int t bound)
  done;
  let mean = !acc /. float_of_int n in
  let expected = float_of_int bound /. 2.0 in
  if abs_float (mean -. expected) /. expected > 0.02 then
    Alcotest.failf "large-bound mean %e too far from %e" mean expected

let test_int_small_bound_stream_unchanged () =
  (* The rejection path must not disturb the draws existing seeded
     pipelines make: below the threshold, Rng.int consumes exactly one
     64-bit draw and returns the 62-bit value mod bound. *)
  let a = Rng.create 16 and b = Rng.create 16 in
  for _ = 1 to 1000 do
    let v = Rng.int a 1024 in
    let raw = Int64.to_int (Int64.shift_right_logical (Rng.bits64 b) 2) in
    Alcotest.(check int) "one draw, mod bound" (raw mod 1024) v
  done

let test_shuffle_permutation () =
  let t = Rng.create 9 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle t a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "shuffle preserves elements"
    (Array.init 50 (fun i -> i))
    sorted

let test_pick_covers () =
  let t = Rng.create 10 in
  let seen = Array.make 4 false in
  for _ = 1 to 1000 do
    seen.(Rng.pick t [| 0; 1; 2; 3 |]) <- true
  done;
  Alcotest.(check (array bool)) "all elements reachable" [| true; true; true; true |] seen

(* --- Json --- *)

let test_json_roundtrip () =
  let src =
    {|{"schema":"pc-bench/1","results":[{"name":"a \"b\"","ms_per_run":1.25},{"name":"c","ms_per_run":null}],"n":-3,"ok":true,"empty":{},"none":[]}|}
  in
  match Json.parse src with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok doc ->
    Alcotest.(check (option string)) "schema" (Some "pc-bench/1")
      (Option.bind (Json.member "schema" doc) Json.to_string);
    Alcotest.(check (option int)) "negative int" (Some (-3))
      (Option.bind (Json.member "n" doc) Json.to_int);
    Alcotest.(check bool) "bool field" true (Json.member "ok" doc = Some (Json.Bool true));
    Alcotest.(check bool) "empty containers" true
      (Json.member "empty" doc = Some (Json.Obj [])
      && Json.member "none" doc = Some (Json.List []));
    let rows =
      Option.bind (Json.member "results" doc) Json.to_list |> Option.get
    in
    Alcotest.(check int) "two rows" 2 (List.length rows);
    let first = List.hd rows in
    Alcotest.(check (option string)) "escaped name" (Some {|a "b"|})
      (Option.bind (Json.member "name" first) Json.to_string);
    Alcotest.(check bool) "float field" true
      (Option.bind (Json.member "ms_per_run" first) Json.to_float = Some 1.25);
    Alcotest.(check bool) "null field" true
      (Json.member "ms_per_run" (List.nth rows 1) = Some Json.Null)

let test_json_rejects_malformed () =
  List.iter
    (fun src ->
      match Json.parse src with
      | Ok _ -> Alcotest.failf "accepted malformed input %S" src
      | Error _ -> ())
    [ "{"; "[1,]"; "{\"a\":}"; "\"unterminated"; "1 2"; ""; "{\"a\" 1}"; "nul" ]

let test_json_parses_own_artefacts () =
  (* The parser must accept what the repo's own writers emit. *)
  let snap =
    {
      Pc_obs.Metrics.counters = [ ("a.b", 3) ];
      gauges = [ ("g", 12) ];
      histograms =
        [
          ( "h",
            {
              Pc_obs.Metrics.count = 2;
              sum = 0.5;
              le = [| 0.1; 1.0 |];
              bucket_counts = [| 1; 1; 0 |];
            } );
        ];
    }
  in
  let path = Filename.temp_file "pc_obs" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Pc_obs.Sink.write_json path snap [];
      match Json.parse_file path with
      | Error msg -> Alcotest.failf "pc-obs/1 artefact rejected: %s" msg
      | Ok doc ->
        Alcotest.(check (option string)) "schema" (Some "pc-obs/1")
          (Option.bind (Json.member "schema" doc) Json.to_string);
        Alcotest.(check (option int)) "counter" (Some 3)
          (Option.bind
             (Option.bind (Json.member "counters" doc) (Json.member "a.b"))
             Json.to_int))

let qcheck_split_streams_differ =
  QCheck.Test.make ~name:"split produces a distinct stream" ~count:100
    QCheck.small_nat (fun seed ->
      let a = Pc_util.Rng.create seed in
      let b = Pc_util.Rng.split a in
      Pc_util.Rng.bits64 a <> Pc_util.Rng.bits64 b)

let () =
  Alcotest.run "pc_util"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
          Alcotest.test_case "copy independence" `Quick test_copy_independent;
          Alcotest.test_case "int range" `Quick test_int_range;
          Alcotest.test_case "int rejects non-positive bound" `Quick
            test_int_rejects_nonpositive;
          Alcotest.test_case "float range" `Quick test_float_range;
          Alcotest.test_case "int roughly uniform" `Quick test_int_uniformish;
          Alcotest.test_case "sample_cdf matches probabilities" `Quick test_sample_cdf;
          Alcotest.test_case "sample_cdf skips empty buckets" `Quick
            test_sample_cdf_degenerate;
          Alcotest.test_case "sample_cdf normalises a short cdf" `Quick
            test_sample_cdf_unnormalised;
          Alcotest.test_case "sample_cdf keeps an overfull cdf's last bucket"
            `Quick test_sample_cdf_overfull;
          Alcotest.test_case "sample_cdf rejects zero-mass cdfs" `Quick
            test_sample_cdf_all_zero;
          Alcotest.test_case "int range for huge bounds" `Quick
            test_int_large_bound_range;
          Alcotest.test_case "int unbiased for huge bounds" `Quick
            test_int_large_bound_unbiased;
          Alcotest.test_case "int stream unchanged below threshold" `Quick
            test_int_small_bound_stream_unchanged;
          Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_permutation;
          Alcotest.test_case "pick covers all elements" `Quick test_pick_covers;
          QCheck_alcotest.to_alcotest qcheck_split_streams_differ;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip accessors" `Quick test_json_roundtrip;
          Alcotest.test_case "rejects malformed input" `Quick
            test_json_rejects_malformed;
          Alcotest.test_case "parses the repo's own artefacts" `Quick
            test_json_parses_own_artefacts;
        ] );
    ]
