(* Tests for Pc_util.Rng: determinism, ranges, distribution sanity. *)

module Rng = Pc_util.Rng

let test_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different seeds differ" false
    (Rng.bits64 a = Rng.bits64 b)

let test_copy_independent () =
  let a = Rng.create 7 in
  let _ = Rng.bits64 a in
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues the stream" (Rng.bits64 a) (Rng.bits64 b);
  (* advancing one does not advance the other *)
  let va = Rng.bits64 a in
  let vb = Rng.bits64 b in
  Alcotest.(check int64) "streams stay in lockstep from equal states" va vb

let test_int_range () =
  let t = Rng.create 3 in
  for _ = 1 to 10_000 do
    let v = Rng.int t 17 in
    if v < 0 || v >= 17 then Alcotest.fail "Rng.int out of range"
  done

let test_int_rejects_nonpositive () =
  let t = Rng.create 3 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int t 0))

let test_float_range () =
  let t = Rng.create 4 in
  for _ = 1 to 10_000 do
    let v = Rng.float t 2.5 in
    if v < 0.0 || v >= 2.5 then Alcotest.fail "Rng.float out of range"
  done

let test_int_uniformish () =
  let t = Rng.create 5 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let v = Rng.int t 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iter
    (fun c ->
      let frac = float_of_int c /. float_of_int n in
      if frac < 0.08 || frac > 0.12 then
        Alcotest.failf "bucket fraction %f too far from 0.1" frac)
    buckets

let test_sample_cdf () =
  let t = Rng.create 6 in
  let cdf = [| 0.25; 0.5; 1.0 |] in
  let counts = Array.make 3 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let i = Rng.sample_cdf t cdf in
    counts.(i) <- counts.(i) + 1
  done;
  let frac i = float_of_int counts.(i) /. float_of_int n in
  Alcotest.(check bool) "bucket 0 ~ 0.25" true (abs_float (frac 0 -. 0.25) < 0.02);
  Alcotest.(check bool) "bucket 1 ~ 0.25" true (abs_float (frac 1 -. 0.25) < 0.02);
  Alcotest.(check bool) "bucket 2 ~ 0.5" true (abs_float (frac 2 -. 0.5) < 0.02)

let test_sample_cdf_degenerate () =
  let t = Rng.create 8 in
  (* A leading zero-probability bucket must never be sampled. *)
  let cdf = [| 0.0; 1.0 |] in
  for _ = 1 to 1000 do
    let i = Rng.sample_cdf t cdf in
    if i = 0 then Alcotest.fail "sampled a zero-probability bucket"
  done

let test_shuffle_permutation () =
  let t = Rng.create 9 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle t a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "shuffle preserves elements"
    (Array.init 50 (fun i -> i))
    sorted

let test_pick_covers () =
  let t = Rng.create 10 in
  let seen = Array.make 4 false in
  for _ = 1 to 1000 do
    seen.(Rng.pick t [| 0; 1; 2; 3 |]) <- true
  done;
  Alcotest.(check (array bool)) "all elements reachable" [| true; true; true; true |] seen

let qcheck_split_streams_differ =
  QCheck.Test.make ~name:"split produces a distinct stream" ~count:100
    QCheck.small_nat (fun seed ->
      let a = Pc_util.Rng.create seed in
      let b = Pc_util.Rng.split a in
      Pc_util.Rng.bits64 a <> Pc_util.Rng.bits64 b)

let () =
  Alcotest.run "pc_util"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
          Alcotest.test_case "copy independence" `Quick test_copy_independent;
          Alcotest.test_case "int range" `Quick test_int_range;
          Alcotest.test_case "int rejects non-positive bound" `Quick
            test_int_rejects_nonpositive;
          Alcotest.test_case "float range" `Quick test_float_range;
          Alcotest.test_case "int roughly uniform" `Quick test_int_uniformish;
          Alcotest.test_case "sample_cdf matches probabilities" `Quick test_sample_cdf;
          Alcotest.test_case "sample_cdf skips empty buckets" `Quick
            test_sample_cdf_degenerate;
          Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_permutation;
          Alcotest.test_case "pick covers all elements" `Quick test_pick_covers;
          QCheck_alcotest.to_alcotest qcheck_split_streams_differ;
        ] );
    ]
