(* Differential testing of the pre-decoded threaded-dispatch engine
   ({!Pc_funcsim.Machine}) against the retained reference interpreter
   ({!Pc_funcsim.Machine_ref}): on qcheck-generated random SRISC
   programs and on every registered workload, the two must produce
   exactly the same retired-event stream — field by field, instruction
   by instruction — the same faults with the same messages, and the
   same final architectural state.  The batched entry point is checked
   through the documented reconstruction contract: statics plus the
   chunk columns must rebuild the exact event stream. *)

module Machine = Pc_funcsim.Machine
module Ref = Pc_funcsim.Machine_ref
module Memory = Pc_funcsim.Memory
module Instr = Pc_isa.Instr
module Reg = Pc_isa.Reg
module Program = Pc_isa.Program
module Registry = Pc_workloads.Registry
module Rng = Pc_util.Rng

(* --- event snapshots and run outcomes --- *)

type snap = {
  s_pc : int;
  s_class : Instr.iclass;
  s_addr : int;
  s_store : bool;
  s_branch : bool;
  s_taken : bool;
  s_next : int;
  s_reads : int list;
  s_writes : int;
}

let snap_of_event (e : Machine.event) =
  {
    s_pc = e.pc;
    s_class = e.iclass;
    s_addr = e.mem_addr;
    s_store = e.is_store;
    s_branch = e.is_branch;
    s_taken = e.taken;
    s_next = e.next_pc;
    s_reads = e.reads;
    s_writes = e.writes;
  }

let pp_snap s =
  Printf.sprintf
    "pc=%d class=%s addr=%d store=%b branch=%b taken=%b next=%d reads=[%s] \
     writes=%d"
    s.s_pc (Instr.class_name s.s_class) s.s_addr s.s_store s.s_branch s.s_taken
    s.s_next
    (String.concat ";" (List.map string_of_int s.s_reads))
    s.s_writes

type outcome = {
  o_events : snap array;
  o_retired : int;  (* -1 when the run faulted *)
  o_fault : string option;
  o_halted : bool;
  o_icount : int;
  o_iregs : int64 array;
  o_fregs : int64 array;  (* float registers, compared bit-exactly *)
  o_pages : int;
  o_classes : int array;
}

let outcome_of ~load ~run ~halted ~icount ~ireg ~freg ~memory ~by_class prog
    ~budget =
  let m = load prog in
  let evs = ref [] in
  let fault = ref None in
  let retired =
    try run m budget (fun e -> evs := snap_of_event e :: !evs)
    with Machine.Fault msg ->
      fault := Some msg;
      -1
  in
  {
    o_events = Array.of_list (List.rev !evs);
    o_retired = retired;
    o_fault = !fault;
    o_halted = halted m;
    o_icount = icount m;
    o_iregs = Array.init Reg.count (fun r -> ireg m r);
    o_fregs = Array.init Reg.count (fun r -> Int64.bits_of_float (freg m r));
    o_pages = Memory.pages_touched (memory m);
    o_classes = by_class m;
  }

let oracle prog ~budget =
  outcome_of ~load:Ref.load
    ~run:(fun m budget f -> Ref.run ~max_instrs:budget m f)
    ~halted:Ref.halted ~icount:Ref.instruction_count ~ireg:Ref.ireg
    ~freg:Ref.freg ~memory:Ref.memory ~by_class:Ref.retired_by_class prog
    ~budget

let engine prog ~budget =
  outcome_of ~load:Machine.load
    ~run:(fun m budget f -> Machine.run ~max_instrs:budget m f)
    ~halted:Machine.halted ~icount:Machine.instruction_count ~ireg:Machine.ireg
    ~freg:Machine.freg ~memory:Machine.memory ~by_class:Machine.retired_by_class
    prog ~budget

(* Rebuild per-instruction events from raw chunks exactly as the batch
   contract documents: per-pc statics for class/store/branch/reads/
   writes, [b_addr]/[b_taken] only where the static says they are
   meaningful, next pcs from [b_pc]/[b_end_pc]. *)
let engine_batched prog ~budget =
  let m = Machine.load prog in
  let st = Machine.statics m in
  let evs = ref [] in
  let fault = ref None in
  let consume (b : Machine.batch) =
    let last = b.Machine.len - 1 in
    for j = 0 to last do
      let pc = b.Machine.b_pc.(j) in
      let cls = st.Machine.s_classes.(pc) in
      let is_mem = cls = Instr.C_load || cls = Instr.C_store in
      let is_branch = cls = Instr.C_branch in
      evs :=
        {
          s_pc = pc;
          s_class = cls;
          s_addr = (if is_mem then b.Machine.b_addr.(j) else -1);
          s_store = cls = Instr.C_store;
          s_branch = is_branch;
          s_taken = is_branch && b.Machine.b_taken.(j);
          s_next =
            (if j < last then b.Machine.b_pc.(j + 1) else b.Machine.b_end_pc);
          s_reads = st.Machine.s_read_lists.(pc);
          s_writes = st.Machine.s_write_ids.(pc);
        }
        :: !evs
    done
  in
  let retired =
    try Machine.run_batched ~max_instrs:budget m consume
    with Machine.Fault msg ->
      fault := Some msg;
      -1
  in
  {
    o_events = Array.of_list (List.rev !evs);
    o_retired = retired;
    o_fault = !fault;
    o_halted = Machine.halted m;
    o_icount = Machine.instruction_count m;
    o_iregs = Array.init Reg.count (fun r -> Machine.ireg m r);
    o_fregs =
      Array.init Reg.count (fun r -> Int64.bits_of_float (Machine.freg m r));
    o_pages = Memory.pages_touched (Machine.memory m);
    o_classes = Machine.retired_by_class m;
  }

let check_same ctx (a : outcome) (b : outcome) =
  if a.o_fault <> b.o_fault then
    Alcotest.failf "%s: fault mismatch: ref=%s engine=%s" ctx
      (Option.value ~default:"-" a.o_fault)
      (Option.value ~default:"-" b.o_fault);
  let na = Array.length a.o_events and nb = Array.length b.o_events in
  let common = min na nb in
  for i = 0 to common - 1 do
    if a.o_events.(i) <> b.o_events.(i) then
      Alcotest.failf "%s: event %d differs\n  ref:    %s\n  engine: %s" ctx i
        (pp_snap a.o_events.(i))
        (pp_snap b.o_events.(i))
  done;
  if na <> nb then
    Alcotest.failf "%s: stream length %d (ref) vs %d (engine)" ctx na nb;
  if a.o_retired <> b.o_retired then
    Alcotest.failf "%s: retired %d vs %d" ctx a.o_retired b.o_retired;
  if a.o_halted <> b.o_halted then
    Alcotest.failf "%s: halted %b vs %b" ctx a.o_halted b.o_halted;
  if a.o_icount <> b.o_icount then
    Alcotest.failf "%s: instruction_count %d vs %d" ctx a.o_icount b.o_icount;
  if a.o_iregs <> b.o_iregs then
    Alcotest.failf "%s: integer register files differ" ctx;
  if a.o_fregs <> b.o_fregs then
    Alcotest.failf "%s: float register files differ (bitwise)" ctx;
  if a.o_pages <> b.o_pages then
    Alcotest.failf "%s: pages_touched %d vs %d" ctx a.o_pages b.o_pages;
  if a.o_classes <> b.o_classes then
    Alcotest.failf "%s: retired_by_class differs" ctx

(* --- random SRISC programs --- *)

let alu_ops =
  Instr.
    [| Add; Sub; And; Or; Xor; Sll; Srl; Sra; Cmp_eq; Cmp_lt; Cmp_le |]

let conds = Instr.[| Eq_z; Ne_z; Lt_z; Ge_z; Gt_z; Le_z |]

let consts =
  [|
    0L;
    1L;
    -1L;
    255L;
    Int64.max_int;
    Int64.min_int;
    0x1234_5678L;
    Int64.of_int Program.data_base;
  |]

(* Valid programs only ([Program.v] validates static control-flow
   targets), but nothing stops runtime faults: junk base registers make
   unaligned or negative addresses, [Jr] through an arbitrary register
   jumps out of range, and a program with no reachable [Halt] falls off
   the end.  All of those must fault identically in both engines. *)
let gen_program rng =
  let n = 8 + Rng.int rng 56 in
  let reg () = Rng.int rng Reg.count in
  let base () = if Rng.int rng 4 = 0 then reg () else 1 in
  let off () =
    if Rng.int rng 8 = 0 then Rng.int rng 41 - 8 else 8 * Rng.int rng 16
  in
  let code =
    Array.init n (fun k ->
        if k = 0 then
          Instr.Li (1, Int64.of_int (Program.data_base + 8 * Rng.int rng 8))
        else if k = 1 then Instr.Li (2, Int64.of_int (Rng.int rng n))
        else
          match Rng.int rng 24 with
          | 0 | 1 | 2 | 3 ->
            Instr.Alu (Rng.pick rng alu_ops, reg (), reg (), reg ())
          | 4 | 5 | 6 ->
            Instr.Alui (Rng.pick rng alu_ops, reg (), reg (), Rng.int rng 65 - 32)
          | 7 -> Instr.Li (reg (), Rng.pick rng consts)
          | 8 -> Instr.Mul (reg (), reg (), reg ())
          | 9 ->
            if Rng.bool rng then Instr.Div (reg (), reg (), reg ())
            else Instr.Rem (reg (), reg (), reg ())
          | 10 ->
            Instr.Falu
              ((if Rng.bool rng then Instr.Fadd else Instr.Fsub), reg (), reg (), reg ())
          | 11 ->
            if Rng.bool rng then Instr.Fmul (reg (), reg (), reg ())
            else Instr.Fdiv (reg (), reg (), reg ())
          | 12 -> Instr.Fli (reg (), Rng.float rng 100.0 -. 50.0)
          | 13 ->
            (match Rng.int rng 4 with
            | 0 -> Instr.Fmov (reg (), reg ())
            | 1 -> Instr.Itof (reg (), reg ())
            | 2 -> Instr.Ftoi (reg (), reg ())
            | _ ->
              Instr.Fcmp
                ( (match Rng.int rng 3 with
                  | 0 -> Instr.Fcmp_eq
                  | 1 -> Instr.Fcmp_lt
                  | _ -> Instr.Fcmp_le),
                  reg (),
                  reg (),
                  reg () ))
          | 14 | 15 -> Instr.Load (reg (), base (), off ())
          | 16 | 17 -> Instr.Store (reg (), base (), off ())
          | 18 ->
            if Rng.bool rng then Instr.Fload (reg (), base (), off ())
            else Instr.Fstore (reg (), base (), off ())
          | 19 | 20 | 21 ->
            Instr.Br (Rng.pick rng conds, reg (), Instr.Abs (Rng.int rng n))
          | 22 ->
            if Rng.bool rng then Instr.Jmp (Instr.Abs (Rng.int rng n))
            else Instr.Call (Instr.Abs (Rng.int rng n))
          | _ ->
            if Rng.int rng 3 = 0 then Instr.Jr (if Rng.bool rng then 2 else reg ())
            else Instr.Halt)
  in
  let data =
    List.init (Rng.int rng 6) (fun i ->
        (Program.data_base + (8 * i), Int64.of_int (Rng.int rng 1000 - 500)))
  in
  Program.v ~name:"fuzz" ~code ~data ~data_bytes:256

let qcheck_diff =
  QCheck.Test.make ~name:"random SRISC programs: engine = reference" ~count:300
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let prog = gen_program rng in
      let budget =
        match Rng.int rng 4 with
        | 0 -> Rng.int rng 40  (* often cuts at a branch or mid-loop *)
        | 1 -> 1 + Rng.int rng 200
        | _ -> 5_000
      in
      let a = oracle prog ~budget in
      check_same "run" a (engine prog ~budget);
      check_same "run_batched" a (engine_batched prog ~budget);
      true)

(* --- per-workload stream equality --- *)

let test_workloads () =
  List.iter
    (fun (e : Registry.entry) ->
      let prog = Registry.compile e in
      let budget = 50_000 in
      let a = oracle prog ~budget in
      check_same (e.Registry.name ^ "/run") a (engine prog ~budget);
      check_same
        (e.Registry.name ^ "/run_batched")
        a
        (engine_batched prog ~budget))
    Registry.all

(* --- step API, including fault steps --- *)

let test_step_equality () =
  let rng = Rng.create 42 in
  for _ = 1 to 30 do
    let prog = gen_program rng in
    let mr = Ref.load prog and me = Machine.load prog in
    let continue = ref true in
    let steps = ref 0 in
    while !continue && !steps < 300 do
      incr steps;
      let er = ref None and ee = ref None in
      let r1 =
        try Ok (Ref.step mr (fun e -> er := Some (snap_of_event e)))
        with Machine.Fault m -> Error m
      in
      let r2 =
        try Ok (Machine.step me (fun e -> ee := Some (snap_of_event e)))
        with Machine.Fault m -> Error m
      in
      (match (r1, r2) with
      | Error m1, Error m2 ->
        Alcotest.(check string) "step fault message" m1 m2;
        continue := false
      | Ok k1, Ok k2 ->
        if k1 <> k2 then Alcotest.failf "step continue %b vs %b" k1 k2;
        if !er <> !ee then
          Alcotest.failf "step event differs\n  ref:    %s\n  engine: %s"
            (match !er with Some s -> pp_snap s | None -> "-")
            (match !ee with Some s -> pp_snap s | None -> "-");
        if not k1 then continue := false
      | Ok _, Error m ->
        Alcotest.failf "engine faulted (%s) where reference stepped" m
      | Error m, Ok _ ->
        Alcotest.failf "reference faulted (%s) where engine stepped" m)
    done
  done

(* --- budget boundaries and resuming --- *)

(* li r3, iters; sub r3, r3, 1; bnez r3, 1; halt — 1 + 2*iters + 1
   dynamic instructions, with a taken branch every second one. *)
let loop_program iters =
  Program.v ~name:"loop"
    ~code:
      [|
        Instr.Li (3, Int64.of_int iters);
        Instr.Alui (Instr.Sub, 3, 3, 1);
        Instr.Br (Instr.Ne_z, 3, Instr.Abs 1);
        Instr.Halt;
      |]
    ~data:[] ~data_bytes:0

let test_budget_resume () =
  let total = 1 + (2 * 5000) + 1 in
  (* budgets that cut exactly at the branch, just after it, and exactly
     at / around the chunk boundary *)
  List.iter
    (fun b1 ->
      let b2 = total - b1 in
      let whole = oracle (loop_program 5000) ~budget:total in
      let m = Machine.load (loop_program 5000) in
      let evs = ref [] in
      let collect e = evs := snap_of_event e :: !evs in
      let r1 = Machine.run ~max_instrs:b1 m collect in
      let r2 = Machine.run ~max_instrs:b2 m collect in
      Alcotest.(check int) "first leg retires its budget" b1 r1;
      Alcotest.(check int) "legs cover the run" total (r1 + r2);
      let got = Array.of_list (List.rev !evs) in
      Alcotest.(check int) "stream length" (Array.length whole.o_events)
        (Array.length got);
      Array.iteri
        (fun i w ->
          if w <> got.(i) then
            Alcotest.failf "resumed event %d differs\n  ref:    %s\n  split:  %s"
              i (pp_snap w) (pp_snap got.(i)))
        whole.o_events;
      Alcotest.(check bool) "halted" true (Machine.halted m))
    [ 1; 2; 3; 4; 5; 4095; 4096; 4097 ]

let test_budget_zero () =
  let a = oracle (loop_program 10) ~budget:0
  and b = engine (loop_program 10) ~budget:0 in
  check_same "budget 0" a b;
  Alcotest.(check int) "no events" 0 (Array.length b.o_events);
  Alcotest.(check bool) "not halted" false b.o_halted

(* --- chunk shapes: full chunks, the halt-mid-batch partial chunk --- *)

let test_chunk_shapes () =
  let lens prog budget =
    let m = Machine.load prog in
    let acc = ref [] in
    let _ = Machine.run_batched ~max_instrs:budget m (fun b ->
        acc := b.Machine.len :: !acc)
    in
    List.rev !acc
  in
  (* a 10002-instruction run: two full chunks, then the tail *)
  let l = lens (loop_program 5000) 20_000 in
  Alcotest.(check (list int)) "full chunks then partial"
    [ Machine.batch_capacity; Machine.batch_capacity; 10_002 - (2 * Machine.batch_capacity) ]
    l;
  (* halt well inside the first chunk: one short batch *)
  let l = lens (loop_program 10) 20_000 in
  Alcotest.(check (list int)) "halt mid-batch" [ 22 ] l

(* --- pages_touched high-water --- *)

let test_pages_touched () =
  let mk addr k =
    [
      Instr.Li (1, Int64.of_int addr); Instr.Store (k, 1, 0);
    ]
  in
  let code =
    Array.of_list
      (mk Program.data_base 2
      @ mk (Program.data_base + (1 lsl 20)) 3
      @ mk (Program.stack_base - 8) 4
      @ [ Instr.Load (5, 1, 0); Instr.Halt ])
  in
  let prog = Program.v ~name:"pages" ~code ~data:[] ~data_bytes:0 in
  let a = oracle prog ~budget:100 and b = engine prog ~budget:100 in
  check_same "pages" a b;
  Alcotest.(check int) "three distinct pages" 3 b.o_pages

(* --- statics freshness --- *)

let test_statics_fresh () =
  let prog = loop_program 3 in
  let first = Instr.Li (3, 5L) in
  let want_write =
    match Instr.writes first with Some w -> w | None -> -1
  in
  let m = Machine.load prog in
  let s1 = Machine.statics m in
  s1.Machine.s_classes.(0) <- Instr.C_other;
  s1.Machine.s_write_ids.(0) <- -17;
  s1.Machine.s_read_lists.(0) <- [ 9; 9; 9 ];
  let s2 = Machine.statics m in
  Alcotest.(check bool) "classes fresh" true
    (s2.Machine.s_classes.(0) = Instr.classify first);
  Alcotest.(check int) "write ids fresh" want_write s2.Machine.s_write_ids.(0);
  Alcotest.(check (list int)) "read lists fresh" (Instr.reads first)
    s2.Machine.s_read_lists.(0)

(* --- figures are byte-identical at every pool width --- *)

module Pool = Pc_exec.Pool
module E = Perfclone.Experiments

let test_fig_pool_identity () =
  let settings =
    {
      E.seed = 1;
      profile_instrs = 100_000;
      sim_instrs = 150_000;
      clone_dynamic = 30_000;
      benchmarks = [ "crc32"; "sha" ];
      sample = None;
      plan_cache = None;
      cache_onepass = false;
    }
  in
  let render pool =
    E.clear_caches ();
    let ps = E.prepare ~pool settings in
    ( Format.asprintf "%a" E.pp_fig3 (E.fig3 ps),
      Format.asprintf "%a" E.pp_fig6 (E.base_runs ~pool settings ps) )
  in
  let f3_serial, f6_serial = render Pool.serial in
  let f3_par, f6_par = render (Pool.create ~num_domains:4) in
  Alcotest.(check string) "fig3 byte-identical at -j1 and -j4" f3_serial f3_par;
  Alcotest.(check string) "fig6 byte-identical at -j1 and -j4" f6_serial f6_par

let () =
  Alcotest.run "pc_funcsim_diff"
    [
      ( "diff",
        [
          QCheck_alcotest.to_alcotest qcheck_diff;
          Alcotest.test_case "every workload: engine = reference" `Slow
            test_workloads;
          Alcotest.test_case "step-by-step equality" `Quick test_step_equality;
        ] );
      ( "boundaries",
        [
          Alcotest.test_case "budget cuts and resume" `Quick test_budget_resume;
          Alcotest.test_case "budget zero" `Quick test_budget_zero;
          Alcotest.test_case "chunk shapes" `Quick test_chunk_shapes;
          Alcotest.test_case "pages_touched high-water" `Quick
            test_pages_touched;
          Alcotest.test_case "statics freshness" `Quick test_statics_fresh;
        ] );
      ( "figures",
        [
          Alcotest.test_case "fig3/fig6 identical at -j1 and -j4" `Slow
            test_fig_pool_identity;
        ] );
    ]
