(* Tests for the Section-6 extensions: portable (Kc-source) clones and
   statistical simulation. *)

module Machine = Pc_funcsim.Machine
module Profile = Pc_profile.Profile
module Portable = Pc_synth.Portable
module Statsim = Pc_statsim.Statsim
module Sim = Pc_uarch.Sim
module Config = Pc_uarch.Config

let profile_cache : (string, Profile.t) Hashtbl.t = Hashtbl.create 8

let profile name =
  match Hashtbl.find_opt profile_cache name with
  | Some p -> p
  | None ->
    let entry = Pc_workloads.Registry.find name in
    let p =
      Pc_profile.Collector.profile ~max_instrs:300_000
        (Pc_workloads.Registry.compile entry)
    in
    Hashtbl.add profile_cache name p;
    p

(* --- portable clones --- *)

let test_portable_typechecks () =
  List.iter
    (fun name ->
      let prog = Portable.generate (profile name) in
      match Pc_kc.Check.check prog with
      | () -> ()
      | exception Pc_kc.Check.Error msg ->
        Alcotest.failf "%s portable clone ill-typed: %s" name msg)
    [ "crc32"; "sha"; "fft"; "dijkstra" ]

let test_portable_interp_runs () =
  (* The Kc clone is a real Kc program: the reference interpreter can run
     it (bounds-checked!), proving the generated indices stay legal. *)
  let prog = Portable.generate ~target_dynamic:5_000 (profile "crc32") in
  let r = Pc_kc.Interp.run ~max_steps:5_000_000 prog in
  Alcotest.(check bool) "steps executed" true (r.Pc_kc.Interp.steps > 100)

let test_portable_compiles_and_halts () =
  List.iter
    (fun name ->
      let clone = Portable.generate_compiled (profile name) in
      let m = Machine.load clone in
      let _ = Machine.run ~max_instrs:5_000_000 m (fun _ -> ()) in
      if not (Machine.halted m) then Alcotest.failf "%s portable clone did not halt" name)
    [ "crc32"; "qsort" ]

let test_portable_deterministic () =
  let c1 = Portable.generate_compiled (profile "sha") in
  let c2 = Portable.generate_compiled (profile "sha") in
  Alcotest.(check bool) "same code" true
    (c1.Pc_isa.Program.code = c2.Pc_isa.Program.code)

let test_portable_tracks_cache_behaviour () =
  let entry = Pc_workloads.Registry.find "dijkstra" in
  let orig = Pc_workloads.Registry.compile entry in
  let clone = Portable.generate_compiled (profile "dijkstra") in
  let mpi p n =
    Pc_caches.Study.run_trace (fun emit ->
        let m = Machine.load p in
        Machine.run ~max_instrs:n m (fun ev ->
            if ev.Machine.mem_addr >= 0 then emit ev.Machine.mem_addr))
    |> Array.map (fun (r : Pc_caches.Study.result) -> r.Pc_caches.Study.mpi)
  in
  let corr =
    Pc_stats.Stats.pearson (mpi clone 1_500_000) (mpi orig 500_000)
  in
  Alcotest.(check bool) "correlates" true (corr > 0.5)

(* --- statistical simulation --- *)

let test_statsim_deterministic () =
  let r1 = Statsim.estimate ~instrs:50_000 Config.base (profile "crc32") in
  let r2 = Statsim.estimate ~instrs:50_000 Config.base (profile "crc32") in
  Alcotest.(check int) "same cycles" r1.Sim.cycles r2.Sim.cycles

let test_statsim_instruction_budget () =
  let r = Statsim.estimate ~instrs:30_000 Config.base (profile "sha") in
  (* the generator completes the block in flight: allow slack *)
  Alcotest.(check bool) "close to budget" true
    (r.Sim.instrs >= 30_000 && r.Sim.instrs < 31_000)

let test_statsim_estimates_ipc () =
  List.iter
    (fun name ->
      let entry = Pc_workloads.Registry.find name in
      let orig = Pc_workloads.Registry.compile entry in
      let real = Sim.run ~max_instrs:500_000 Config.base orig in
      let est = Statsim.estimate ~instrs:100_000 Config.base (profile name) in
      let err =
        Pc_stats.Stats.abs_rel_error ~actual:real.Sim.ipc ~predicted:est.Sim.ipc
      in
      if err > 0.35 then
        Alcotest.failf "%s: statsim IPC %.3f vs real %.3f (%.0f%%)" name est.Sim.ipc
          real.Sim.ipc (100.0 *. err))
    [ "sha"; "dijkstra"; "qsort"; "gsm" ]

let test_statsim_tracks_width_change () =
  let prof = profile "sha" in
  let narrow = Statsim.estimate ~instrs:100_000 Config.base prof in
  let wide = Statsim.estimate ~instrs:100_000 (Config.with_widths 2 Config.base) prof in
  Alcotest.(check bool) "wider machine estimated faster" true
    (wide.Sim.ipc > narrow.Sim.ipc)

let test_statsim_mix_respected () =
  let prof = profile "fft" in
  let r = Statsim.estimate ~instrs:100_000 Config.base prof in
  let frac c =
    float_of_int r.Sim.class_counts.(Pc_isa.Instr.class_index c)
    /. float_of_int r.Sim.instrs
  in
  let orig_frac c = prof.Profile.global_mix.(Pc_isa.Instr.class_index c) in
  let d = abs_float (frac Pc_isa.Instr.C_load -. orig_frac Pc_isa.Instr.C_load) in
  Alcotest.(check bool) "load fraction within 5 points" true (d < 0.05)

(* --- interval analysis --- *)

let test_interval_close_to_timing () =
  List.iter
    (fun name ->
      let entry = Pc_workloads.Registry.find name in
      let orig = Pc_workloads.Registry.compile entry in
      let real = Sim.run ~max_instrs:400_000 Config.base orig in
      let est = Pc_statsim.Interval.of_program ~max_instrs:400_000 Config.base orig in
      let err =
        Pc_stats.Stats.abs_rel_error ~actual:real.Sim.ipc
          ~predicted:est.Pc_statsim.Interval.ipc
      in
      if err > 0.30 then
        Alcotest.failf "%s: interval IPC %.3f vs real %.3f" name
          est.Pc_statsim.Interval.ipc real.Sim.ipc)
    [ "sha"; "dijkstra"; "qsort"; "fft" ]

let test_interval_components_positive () =
  let entry = Pc_workloads.Registry.find "gsm" in
  let orig = Pc_workloads.Registry.compile entry in
  let est = Pc_statsim.Interval.of_program ~max_instrs:300_000 Config.base orig in
  Alcotest.(check bool) "base cycles positive" true (est.Pc_statsim.Interval.base_cycles > 0.0);
  Alcotest.(check bool) "branch cycles non-negative" true
    (est.Pc_statsim.Interval.branch_cycles >= 0.0);
  Alcotest.(check bool) "memory cycles non-negative" true
    (est.Pc_statsim.Interval.memory_cycles >= 0.0);
  Alcotest.(check bool) "ipc positive" true (est.Pc_statsim.Interval.ipc > 0.0)

let test_interval_tracks_predictor_quality () =
  (* swapping GAp for not-taken must not raise the interval estimate *)
  let entry = Pc_workloads.Registry.find "qsort" in
  let orig = Pc_workloads.Registry.compile entry in
  let good = Pc_statsim.Interval.of_program ~max_instrs:300_000 Config.base orig in
  let bad =
    Pc_statsim.Interval.of_program ~max_instrs:300_000
      (Config.with_bpred Pc_branch.Predictor.Not_taken Config.base)
      orig
  in
  Alcotest.(check bool) "worse predictor, lower estimate" true
    (bad.Pc_statsim.Interval.ipc <= good.Pc_statsim.Interval.ipc)

let test_interval_from_profile () =
  let est =
    Pc_statsim.Interval.of_profile ~instrs:50_000 Config.base (profile "sha")
  in
  Alcotest.(check bool) "profile-based estimate sane" true
    (est.Pc_statsim.Interval.ipc > 0.2 && est.Pc_statsim.Interval.ipc <= 1.0)

let test_statsim_rejects_empty () =
  let empty =
    {
      Profile.name = "empty";
      instr_count = 0;
      nodes = [||];
      global_mix = Array.make Pc_isa.Instr.class_count 0.0;
      avg_block_size = 0.0;
      single_stride_fraction = 1.0;
      unique_streams = 0;
    }
  in
  Alcotest.(check bool) "rejected" true
    (match Statsim.estimate Config.base empty with
    | _ -> false
    | exception Invalid_argument _ -> true)

let () =
  Alcotest.run "extensions"
    [
      ( "portable",
        [
          Alcotest.test_case "type-checks" `Slow test_portable_typechecks;
          Alcotest.test_case "interpreter runs it (bounds-checked)" `Slow
            test_portable_interp_runs;
          Alcotest.test_case "compiles and halts" `Slow test_portable_compiles_and_halts;
          Alcotest.test_case "deterministic" `Slow test_portable_deterministic;
          Alcotest.test_case "tracks cache behaviour" `Slow
            test_portable_tracks_cache_behaviour;
        ] );
      ( "interval",
        [
          Alcotest.test_case "close to detailed timing" `Slow test_interval_close_to_timing;
          Alcotest.test_case "components well-formed" `Quick
            test_interval_components_positive;
          Alcotest.test_case "tracks predictor quality" `Quick
            test_interval_tracks_predictor_quality;
          Alcotest.test_case "estimate from a profile" `Quick test_interval_from_profile;
        ] );
      ( "statsim",
        [
          Alcotest.test_case "deterministic" `Quick test_statsim_deterministic;
          Alcotest.test_case "instruction budget" `Quick test_statsim_instruction_budget;
          Alcotest.test_case "estimates IPC" `Slow test_statsim_estimates_ipc;
          Alcotest.test_case "tracks width changes" `Quick test_statsim_tracks_width_change;
          Alcotest.test_case "instruction mix respected" `Quick test_statsim_mix_respected;
          Alcotest.test_case "rejects empty profiles" `Quick test_statsim_rejects_empty;
        ] );
    ]
