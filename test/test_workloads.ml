(* Validation of the 23 workload kernels: every benchmark type-checks,
   compiles, halts, and produces the same checksum under the reference
   interpreter and the compiled SRISC binary; dynamic sizes stay inside
   the range the experiments assume. *)

module Registry = Pc_workloads.Registry
module Interp = Pc_kc.Interp
module Machine = Pc_funcsim.Machine

let interp_cache : (string, int64) Hashtbl.t = Hashtbl.create 32

let interp_checksum (e : Registry.entry) =
  match Hashtbl.find_opt interp_cache e.Registry.name with
  | Some v -> v
  | None ->
    let v = (Interp.run ~max_steps:20_000_000 e.Registry.prog).Interp.return_value in
    Hashtbl.add interp_cache e.Registry.name v;
    v

let run_compiled (e : Registry.entry) =
  let program = Registry.compile e in
  let m = Machine.load program in
  let instrs = Machine.run ~max_instrs:20_000_000 m (fun _ -> ()) in
  (m, instrs)

let test_agreement (e : Registry.entry) () =
  let expected = interp_checksum e in
  let m, _ = run_compiled e in
  if not (Machine.halted m) then Alcotest.fail "did not halt within budget";
  Alcotest.(check int64)
    (e.Registry.name ^ " checksum") expected
    (Machine.ireg m Pc_isa.Reg.ret)

let test_dynamic_size (e : Registry.entry) () =
  let _, instrs = run_compiled e in
  if instrs < 20_000 then
    Alcotest.failf "%s too short: %d dynamic instructions" e.Registry.name instrs;
  if instrs > 5_000_000 then
    Alcotest.failf "%s too long: %d dynamic instructions" e.Registry.name instrs

(* Golden regression values: checksum and dynamic instruction count of
   every benchmark, pinned so that accidental changes to kernels, inputs,
   the compiler or the simulator are caught immediately. *)
let golden =
  [
    ("basicmath", 333581L, 107122);
    ("bitcount", 30702L, 841111);
    ("qsort", 251454288L, 556706);
    ("susan", 12204421L, 1710972);
    ("dijkstra", 42327L, 1128318);
    ("patricia", 629651L, 1113205);
    ("crc32", 1191043187L, 660784);
    ("blowfish", 819204600L, 591008);
    ("rijndael", 540308858L, 2173280);
    ("sha", 2121780129L, 337640);
    ("pegwit", 1714393541L, 206794);
    ("adpcm_enc", 56601080L, 666651);
    ("adpcm_dec", 4294947494L, 533457);
    ("gsm", 302394712L, 1097152);
    ("fft", 562300L, 163316);
    ("g721", 265352424L, 2293113);
    ("jpeg_enc", 10033298L, 1927462);
    ("jpeg_dec", 430903L, 1936134);
    ("mpeg_decode", 162311876L, 1467332);
    ("typeset", 470451L, 131712);
    ("mad", 142757L, 1060647);
    ("stringsearch", 101010100000000L, 763198);
    ("ispell", 5400360L, 448804);
  ]

let test_golden (name, checksum, instrs) () =
  let e = Registry.find name in
  let m, n = run_compiled e in
  Alcotest.(check int64) (name ^ " checksum") checksum (Machine.ireg m Pc_isa.Reg.ret);
  Alcotest.(check int) (name ^ " dynamic length") instrs n

let test_count_and_domains () =
  Alcotest.(check int) "23 benchmarks" 23 (List.length Registry.all);
  let expected_domains =
    [ "automotive"; "network"; "security"; "telecom"; "consumer"; "office" ]
  in
  Alcotest.(check (list string)) "domains" expected_domains (List.map fst Registry.domains);
  List.iter
    (fun (_, names) ->
      if names = [] then Alcotest.fail "empty domain")
    Registry.domains

let test_find () =
  let e = Registry.find "fft" in
  Alcotest.(check string) "find fft" "telecom" e.Registry.domain;
  Alcotest.(check bool) "unknown name" true
    (match Registry.find "nonesuch" with
    | _ -> false
    | exception Not_found -> true)

let test_unique_names () =
  let names = Registry.names in
  let sorted = List.sort_uniq compare names in
  Alcotest.(check int) "no duplicate names" (List.length names) (List.length sorted)

let test_compile_memoised () =
  let e = Registry.find "crc32" in
  let p1 = Registry.compile e and p2 = Registry.compile e in
  Alcotest.(check bool) "same compiled program" true (p1 == p2)

let () =
  let per_bench =
    List.concat_map
      (fun (e : Registry.entry) ->
        [
          Alcotest.test_case (e.Registry.name ^ " interp = compiled") `Slow
            (test_agreement e);
          Alcotest.test_case (e.Registry.name ^ " dynamic size") `Slow
            (test_dynamic_size e);
        ])
      Registry.all
  in
  Alcotest.run "pc_workloads"
    [
      ( "registry",
        [
          Alcotest.test_case "count and domains" `Quick test_count_and_domains;
          Alcotest.test_case "find" `Quick test_find;
          Alcotest.test_case "unique names" `Quick test_unique_names;
          Alcotest.test_case "compile memoised" `Quick test_compile_memoised;
        ] );
      ("benchmarks", per_bench);
      ( "golden",
        List.map
          (fun ((name, _, _) as g) ->
            Alcotest.test_case (name ^ " pinned") `Slow (test_golden g))
          golden );
    ]
