(* Tests for pc_exec: the domain pool must behave exactly like serial
   execution (order, exceptions, results) at every width, and the memo
   store must count hits/misses and keep seed-distinguished keys apart.
   The determinism-under-parallelism invariant — experiment rows are
   bit-identical at -j 1 and -j 4 — is the contract every driver in
   Perfclone.Experiments relies on. *)

module Pool = Pc_exec.Pool
module Store = Pc_exec.Store
module E = Perfclone.Experiments

(* --- pool: unit --- *)

let test_map_preserves_order () =
  let pool = Pool.create ~num_domains:4 in
  let xs = List.init 100 (fun i -> i) in
  Alcotest.(check (list int))
    "results in input order"
    (List.map (fun x -> (x * x) + 1) xs)
    (Pool.map pool (fun x -> (x * x) + 1) xs)

let test_map_empty () =
  List.iter
    (fun j ->
      let pool = Pool.create ~num_domains:j in
      Alcotest.(check (list int)) "empty in, empty out" []
        (Pool.map pool (fun x -> x) []))
    [ 1; 4 ]

let test_serial_fallback () =
  let pool = Pool.create ~num_domains:1 in
  Alcotest.(check int) "one domain" 1 (Pool.num_domains pool);
  let xs = [ 3; 1; 4; 1; 5 ] in
  Alcotest.(check (list int))
    "num_domains=1 equals List.map"
    (List.map succ xs) (Pool.map pool succ xs)

let test_create_rejects_zero () =
  Alcotest.check_raises "num_domains=0 rejected"
    (Invalid_argument "Pc_exec.Pool.create: num_domains must be at least 1")
    (fun () -> ignore (Pool.create ~num_domains:0))

let test_exception_propagates_after_drain () =
  let pool = Pool.create ~num_domains:3 in
  let ran = Atomic.make 0 in
  let f x =
    Atomic.incr ran;
    if x = 5 then failwith "boom";
    x
  in
  (match Pool.map pool f (List.init 10 (fun i -> i)) with
  | _ -> Alcotest.fail "worker exception was swallowed"
  | exception Failure msg -> Alcotest.(check string) "worker exception" "boom" msg);
  Alcotest.(check int) "batch drained before re-raise" 10 (Atomic.get ran)

let test_earliest_exception_wins () =
  (* Two failing tasks: regardless of scheduling, the re-raised
     exception is the earliest failing input's. *)
  let pool = Pool.create ~num_domains:4 in
  let f x = if x = 3 || x = 7 then failwith (string_of_int x) else x in
  match Pool.map pool f (List.init 10 (fun i -> i)) with
  | _ -> Alcotest.fail "expected a failure"
  | exception Failure msg -> Alcotest.(check string) "input order" "3" msg

let test_nested_map_rejected () =
  let outer = Pool.create ~num_domains:2 in
  let inner = Pool.create ~num_domains:2 in
  match Pool.map outer (fun _ -> Pool.map inner succ [ 1; 2 ]) [ 1; 2; 3 ] with
  | _ -> Alcotest.fail "nested map was not rejected"
  | exception Invalid_argument _ -> ()

let test_map_reduce_ordered () =
  (* A non-commutative reduction detects any ordering violation. *)
  let pool = Pool.create ~num_domains:4 in
  let xs = List.init 20 (fun i -> i) in
  let concat =
    Pool.map_reduce pool
      ~f:string_of_int
      ~reduce:(fun acc s -> acc ^ "," ^ s)
      ~init:"" xs
  in
  Alcotest.(check string)
    "fold in input order"
    (List.fold_left (fun acc x -> acc ^ "," ^ string_of_int x) "" xs)
    concat

let test_many_domains_few_tasks () =
  let pool = Pool.create ~num_domains:8 in
  Alcotest.(check (list int)) "more domains than tasks" [ 2; 4 ]
    (Pool.map pool (fun x -> 2 * x) [ 1; 2 ])

(* --- store: unit --- *)

let test_store_hit_miss_counts () =
  let s : (string * int, int) Store.t = Store.create () in
  let calls = ref 0 in
  let get k v =
    Store.find_or_compute s k (fun () ->
        incr calls;
        v)
  in
  Alcotest.(check int) "computed" 10 (get ("a", 1) 10);
  Alcotest.(check int) "miss counted" 1 (Store.misses s);
  Alcotest.(check int) "no hit yet" 0 (Store.hits s);
  Alcotest.(check int) "cached" 10 (get ("a", 1) 99);
  Alcotest.(check int) "hit counted" 1 (Store.hits s);
  Alcotest.(check int) "computed exactly once" 1 !calls;
  Alcotest.(check int) "one entry" 1 (Store.length s);
  Store.clear s;
  Alcotest.(check int) "cleared entries" 0 (Store.length s);
  Alcotest.(check int) "cleared hits" 0 (Store.hits s);
  Alcotest.(check int) "cleared misses" 0 (Store.misses s)

let test_store_seed_keys_do_not_collide () =
  (* The profile store keys on (benchmark, profile_instrs, seed): keys
     differing only in the seed must resolve to distinct entries. *)
  let s : (string * int * int, int) Store.t = Store.create () in
  let v1 = Store.find_or_compute s ("crc32", 300_000, 1) (fun () -> 111) in
  let v2 = Store.find_or_compute s ("crc32", 300_000, 2) (fun () -> 222) in
  Alcotest.(check int) "seed 1 value" 111 v1;
  Alcotest.(check int) "seed 2 value" 222 v2;
  Alcotest.(check int) "two distinct entries" 2 (Store.length s);
  Alcotest.(check int) "both were misses" 2 (Store.misses s);
  Alcotest.(check int) "seed 1 still cached" 111
    (Store.find_or_compute s ("crc32", 300_000, 1) (fun () -> 999))

let test_store_exception_caches_nothing () =
  let s : (int, int) Store.t = Store.create () in
  (match Store.find_or_compute s 1 (fun () -> failwith "compute failed") with
  | _ -> Alcotest.fail "expected the compute exception"
  | exception Failure _ -> ());
  Alcotest.(check int) "nothing cached" 0 (Store.length s);
  Alcotest.(check int) "retry computes" 5
    (Store.find_or_compute s 1 (fun () -> 5))

let test_store_parallel_access () =
  (* Pool workers sharing one store: every key resolves to one value. *)
  let s : (int, int) Store.t = Store.create () in
  let pool = Pool.create ~num_domains:4 in
  let results =
    Pool.map pool
      (fun i -> Store.find_or_compute s (i mod 8) (fun () -> 3 * (i mod 8)))
      (List.init 64 (fun i -> i))
  in
  List.iteri
    (fun i v -> Alcotest.(check int) "consistent value" (3 * (i mod 8)) v)
    results;
  Alcotest.(check int) "8 entries" 8 (Store.length s)

(* --- qcheck: Pool.map ≡ List.map at random widths --- *)

let qcheck_pool_map_equiv =
  QCheck.Test.make ~name:"Pool.map ≡ List.map for any num_domains in [1..8]"
    ~count:40
    QCheck.(pair (small_list int) (int_range 1 8))
    (fun (xs, num_domains) ->
      let pool = Pool.create ~num_domains in
      let f x = (x * 7919) lxor (x lsr 3) in
      Pool.map pool f xs = List.map f xs)

(* --- determinism under parallelism: fig3/fig6 at -j 1 vs -j 4 --- *)

let fig_rows jobs =
  (* Cold caches each time: the serial and parallel runs must recompute
     everything and still agree bit-for-bit. *)
  E.clear_caches ();
  let pool = Pool.create ~num_domains:jobs in
  let settings = E.quick_settings in
  let pipelines = E.prepare ~pool settings in
  (E.fig3 pipelines, E.base_runs ~pool settings pipelines)

let test_fig_rows_deterministic () =
  let fig3_serial, fig6_serial = fig_rows 1 in
  let fig3_parallel, fig6_parallel = fig_rows 4 in
  Alcotest.(check bool) "fig3 rows identical at -j 1 and -j 4" true
    (compare fig3_serial fig3_parallel = 0);
  Alcotest.(check bool) "fig6 rows identical at -j 1 and -j 4" true
    (compare fig6_serial fig6_parallel = 0)

let () =
  Alcotest.run "pc_exec"
    [
      ( "pool",
        [
          Alcotest.test_case "order preservation" `Quick test_map_preserves_order;
          Alcotest.test_case "empty input" `Quick test_map_empty;
          Alcotest.test_case "num_domains=1 fallback" `Quick test_serial_fallback;
          Alcotest.test_case "invalid num_domains" `Quick test_create_rejects_zero;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagates_after_drain;
          Alcotest.test_case "earliest exception wins" `Quick
            test_earliest_exception_wins;
          Alcotest.test_case "nested map rejected" `Quick test_nested_map_rejected;
          Alcotest.test_case "map_reduce order" `Quick test_map_reduce_ordered;
          Alcotest.test_case "more domains than tasks" `Quick
            test_many_domains_few_tasks;
          QCheck_alcotest.to_alcotest qcheck_pool_map_equiv;
        ] );
      ( "store",
        [
          Alcotest.test_case "hit/miss counts" `Quick test_store_hit_miss_counts;
          Alcotest.test_case "seed keys distinct" `Quick
            test_store_seed_keys_do_not_collide;
          Alcotest.test_case "failed compute not cached" `Quick
            test_store_exception_caches_nothing;
          Alcotest.test_case "parallel access" `Quick test_store_parallel_access;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "fig3/fig6 rows identical across -j" `Slow
            test_fig_rows_deterministic;
        ] );
    ]
