(* Tests for the Kc language: type checker, interpreter, and differential
   testing of the compiler against the interpreter. *)

open Pc_kc.Ast
module Check = Pc_kc.Check
module Interp = Pc_kc.Interp
module Compile = Pc_kc.Compile
module Machine = Pc_funcsim.Machine
module Memory = Pc_funcsim.Memory
module Program = Pc_isa.Program

(* Run a program both ways and compare the return value and every global
   array word. *)
let run_both ?(max_instrs = 5_000_000) prog =
  let interp_result = Interp.run prog in
  let compiled = Compile.compile ~name:"test" prog in
  let m = Machine.load compiled in
  let _ = Machine.run ~max_instrs m (fun _ -> ()) in
  if not (Machine.halted m) then Alcotest.fail "compiled program did not halt";
  let machine_ret = Machine.ireg m Pc_isa.Reg.ret in
  let offsets = Compile.global_offsets prog in
  let mem = Machine.memory m in
  List.iter
    (fun (g : global) ->
      let off = List.assoc g.gname offsets in
      let interp_arr = List.assoc g.gname interp_result.Interp.globals in
      for i = 0 to g.elems - 1 do
        let addr = Program.data_base + off + (8 * i) in
        let got = Memory.read mem addr in
        if got <> interp_arr.(i) then
          Alcotest.failf "global %s[%d]: interp %Ld, compiled %Ld" g.gname i
            interp_arr.(i) got
      done)
    prog.globals;
  Alcotest.(check int64)
    "return value matches interpreter" interp_result.Interp.return_value machine_ret;
  machine_ret

let simple_main ?(globals = []) ?(funs = []) ?(locals = []) body =
  { globals; funs = funs @ [ fn "main" ~locals body ] }

(* --- type checker --- *)

let expect_check_error prog =
  match Check.check prog with
  | () -> Alcotest.fail "expected a type error"
  | exception Check.Error _ -> ()

let test_check_rejects_unknown_var () =
  expect_check_error (simple_main [ ret (v "nope") ])

let test_check_rejects_mixed_arith () =
  expect_check_error
    (simple_main ~locals:[ ("x", I); ("y", F) ] [ ret (v "x" +: I2f (v "x" +: v "x") ) ]);
  expect_check_error (simple_main [ ret (i 1 +: f 2.0) ])

let test_check_rejects_float_bitops () =
  expect_check_error (simple_main [ ret (F2i (f 1.0 &: f 2.0)) ])

let test_check_rejects_missing_main () =
  expect_check_error { globals = []; funs = [ fn "not_main" [ ret (i 0) ] ] }

let test_check_rejects_bad_arity () =
  expect_check_error
    (simple_main
       ~funs:[ fn "id" ~params:[ ("x", I) ] [ ret (v "x") ] ]
       [ ret (call "id" [ i 1; i 2 ]) ])

let test_check_rejects_float_for_var () =
  expect_check_error
    (simple_main ~locals:[ ("x", F) ] [ for_ "x" (i 0) (i 3) []; ret (i 0) ])

let test_check_accepts_valid () =
  Check.check
    (simple_main ~locals:[ ("x", I) ] [ set "x" (i 1); ret (v "x") ])

(* --- interpreter semantics --- *)

let test_interp_arith () =
  let r = Interp.run (simple_main [ ret ((i 6 *: i 7) +: (i 10 /: i 3)) ]) in
  Alcotest.(check int64) "6*7 + 10/3" 45L r.Interp.return_value

let test_interp_div_by_zero () =
  let r = Interp.run (simple_main [ ret ((i 7 /: i 0) +: (i 7 %: i 0)) ]) in
  Alcotest.(check int64) "div/mod by zero are 0" 0L r.Interp.return_value

let test_interp_bounds_check () =
  let prog = simple_main ~globals:[ garr "a" 4 ] [ ret (ld "a" (i 9)) ] in
  Alcotest.(check bool) "out of bounds detected" true
    (try
       ignore (Interp.run prog);
       false
     with Interp.Runtime_error _ -> true)

let test_interp_step_budget () =
  let prog = simple_main ~locals:[ ("x", I) ] [ while_ (i 1) [ set "x" (v "x") ]; ret (i 0) ] in
  Alcotest.(check bool) "infinite loop stopped" true
    (try
       ignore (Interp.run ~max_steps:10_000 prog);
       false
     with Interp.Runtime_error _ -> true)

(* --- differential compiler tests --- *)

let test_compile_arith () =
  let ret_val =
    run_both
      (simple_main
         [ ret (((i 3 +: i 4) *: (i 10 -: i 2)) -: (i 100 /: i 7) %: i 5) ])
  in
  Alcotest.(check int64) "expected value" 52L ret_val

let test_compile_comparisons () =
  let checksum =
    (* Encode all comparison results into one integer. *)
    ret
      ((i 3 <: i 4)
      +: ((i 4 <=: i 4) <<: i 1)
      +: ((i 5 >: i 4) <<: i 2)
      +: ((i 5 >=: i 6) <<: i 3)
      +: ((i 7 =: i 7) <<: i 4)
      +: ((i 7 <>: i 7) <<: i 5)
      +: ((i (-1) <: i 0) <<: i 6))
  in
  let r = run_both (simple_main [ checksum ]) in
  Alcotest.(check int64) "comparison bits" 0b1010111L r

let test_compile_logical_ops () =
  let r =
    run_both
      (simple_main
         [
           ret
             ((i 3 &&: i 5)
             +: ((i 0 ||: i 9) <<: i 1)
             +: ((i 0 &&: i 2) <<: i 2)
             +: (Un (Lnot, i 0) <<: i 3)
             +: (Un (Lnot, i 42) <<: i 4));
         ])
  in
  Alcotest.(check int64) "logical ops" 0b1011L r

let test_compile_negative_numbers () =
  let r =
    run_both
      (simple_main
         [ ret (Un (Neg, i 21) *: Un (Neg, i 2) +: (Un (Bnot, i 0) +: i 1)) ])
  in
  Alcotest.(check int64) "negation and complement" 42L r

let test_compile_if_else () =
  let prog =
    simple_main ~locals:[ ("x", I) ]
      [
        set "x" (i 10);
        if_ (v "x" >: i 5) [ set "x" (v "x" +: i 100) ] [ set "x" (i 0) ];
        if_ (v "x" <: i 5) [ set "x" (i 0) ] [ set "x" (v "x" +: i 1) ];
        ret (v "x");
      ]
  in
  Alcotest.(check int64) "nested if/else" 111L (run_both prog)

let test_compile_while_loop () =
  let prog =
    simple_main ~locals:[ ("s", I); ("n", I) ]
      [
        set "n" (i 100);
        while_ (v "n" >: i 0)
          [ set "s" (v "s" +: v "n"); set "n" (v "n" -: i 1) ];
        ret (v "s");
      ]
  in
  Alcotest.(check int64) "sum 1..100" 5050L (run_both prog)

let test_compile_for_loop () =
  let prog =
    simple_main ~locals:[ ("s", I); ("j", I) ]
      [ for_ "j" (i 0) (i 10) [ set "s" (v "s" +: (v "j" *: v "j")) ]; ret (v "s") ]
  in
  Alcotest.(check int64) "sum of squares < 10" 285L (run_both prog)

let test_compile_global_arrays () =
  let prog =
    simple_main
      ~globals:[ garr "a" ~init:[| 5L; 6L; 7L |] 8 ]
      ~locals:[ ("j", I); ("s", I) ]
      [
        for_ "j" (i 3) (i 8) [ st "a" (v "j") (v "j" *: i 2) ];
        for_ "j" (i 0) (i 8) [ set "s" (v "s" +: ld "a" (v "j")) ];
        ret (v "s");
      ]
  in
  Alcotest.(check int64) "array sum" (Int64.of_int (5 + 6 + 7 + 6 + 8 + 10 + 12 + 14))
    (run_both prog)

let test_compile_functions_and_recursion () =
  let fib =
    fn "fib" ~params:[ ("n", I) ]
      [
        if_ (v "n" <: i 2) [ ret (v "n") ] [];
        ret (call "fib" [ v "n" -: i 1 ] +: call "fib" [ v "n" -: i 2 ]);
      ]
  in
  let prog = simple_main ~funs:[ fib ] [ ret (call "fib" [ i 15 ]) ] in
  Alcotest.(check int64) "fib 15" 610L (run_both prog)

let test_compile_mutual_recursion () =
  let is_even =
    fn "is_even" ~params:[ ("n", I) ]
      [ if_ (v "n" =: i 0) [ ret (i 1) ] []; ret (call "is_odd" [ v "n" -: i 1 ]) ]
  in
  let is_odd =
    fn "is_odd" ~params:[ ("n", I) ]
      [ if_ (v "n" =: i 0) [ ret (i 0) ] []; ret (call "is_even" [ v "n" -: i 1 ]) ]
  in
  let prog =
    simple_main ~funs:[ is_even; is_odd ]
      [ ret (call "is_even" [ i 10 ] +: (call "is_odd" [ i 7 ] <<: i 1)) ]
  in
  Alcotest.(check int64) "mutual recursion" 3L (run_both prog)

let test_compile_float_math () =
  let prog =
    simple_main ~locals:[ ("x", F); ("y", F) ]
      [
        set "x" (f 1.5);
        set "y" ((v "x" *: f 4.0) -: (f 1.0 /: f 8.0));
        ret (F2i (v "y" *: f 1000.0));
      ]
  in
  Alcotest.(check int64) "float pipeline" 5875L (run_both prog)

let test_compile_float_compare_and_neg () =
  let prog =
    simple_main ~locals:[ ("x", F) ]
      [
        set "x" (Un (Neg, f 2.5));
        ret ((v "x" <: f 0.0) +: ((v "x" =: f (-2.5)) <<: i 1) +: ((f 1.0 >=: f 1.0) <<: i 2));
      ]
  in
  Alcotest.(check int64) "float compares" 7L (run_both prog)

let test_compile_float_arrays () =
  let prog =
    simple_main
      ~globals:[ gfarr "w" ~init:[| 0.5; 1.5; 2.5; 3.5 |] 4 ]
      ~locals:[ ("j", I); ("acc", F) ]
      [
        for_ "j" (i 0) (i 4) [ set "acc" (v "acc" +: (ld "w" (v "j") *: ld "w" (v "j"))) ];
        ret (F2i (v "acc" *: f 100.0));
      ]
  in
  (* 0.25 + 2.25 + 6.25 + 12.25 = 21.0 *)
  Alcotest.(check int64) "float array dot" 2100L (run_both prog)

let test_compile_many_args () =
  let sum6 =
    fn "sum6"
      ~params:[ ("a", I); ("b", I); ("c", I); ("d", I); ("e", I); ("g", I) ]
      [ ret (v "a" +: v "b" +: v "c" +: v "d" +: v "e" +: v "g") ]
  in
  let prog =
    simple_main ~funs:[ sum6 ] [ ret (call "sum6" [ i 1; i 2; i 3; i 4; i 5; i 6 ]) ]
  in
  Alcotest.(check int64) "six arguments" 21L (run_both prog)

let test_compile_mixed_args () =
  let mix =
    fn "mix" ~params:[ ("a", I); ("x", F); ("b", I); ("y", F) ]
      [ ret (v "a" +: v "b" +: F2i (v "x" *: v "y")) ]
  in
  let prog = simple_main ~funs:[ mix ] [ ret (call "mix" [ i 1; f 2.0; i 3; f 4.0 ]) ] in
  Alcotest.(check int64) "mixed int/float arguments" 12L (run_both prog)

let test_compile_nested_calls () =
  let inc = fn "inc" ~params:[ ("x", I) ] [ ret (v "x" +: i 1) ] in
  let prog =
    simple_main ~funs:[ inc ]
      [ ret (call "inc" [ call "inc" [ call "inc" [ i 0 ] ] ] +: call "inc" [ i 10 ]) ]
  in
  Alcotest.(check int64) "nested and sequential calls" 14L (run_both prog)

let test_compile_spilled_locals () =
  (* More locals than register homes: forces frame spills. *)
  let names = List.init 20 (fun k -> Printf.sprintf "v%d" k) in
  let locals = List.map (fun n -> (n, I)) names in
  let assigns = List.mapi (fun k n -> set n (i (k + 1))) names in
  let total =
    List.fold_left (fun acc n -> acc +: v n) (i 0) names
  in
  let prog = simple_main ~locals (assigns @ [ ret total ]) in
  Alcotest.(check int64) "spilled locals survive" 210L (run_both prog)

let test_compile_temps_across_calls () =
  (* A live temporary must survive a call that uses temporaries itself. *)
  let noisy =
    fn "noisy" ~params:[ ("x", I) ] ~locals:[ ("t", I) ]
      [ set "t" ((v "x" *: i 3) +: (v "x" /: i 2)); ret (v "t") ]
  in
  let prog =
    simple_main ~funs:[ noisy ]
      [ ret ((i 1000 +: (i 23 *: i 2)) -: call "noisy" [ i 2 ]) ]
  in
  Alcotest.(check int64) "temp live across call" 1039L (run_both prog)

let test_compile_i2f_f2i () =
  let prog =
    simple_main ~locals:[ ("n", I) ]
      [ set "n" (i 7); ret (F2i (I2f (v "n") *: f 1.5) +: F2i (f (-2.7))) ]
  in
  Alcotest.(check int64) "conversions truncate" 8L (run_both prog)

(* --- property: random straight-line integer programs agree --- *)

let gen_expr : expr QCheck.Gen.t =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        map (fun n -> Int (Int64.of_int n)) (int_range (-1000) 1000);
        oneofl [ Var "a"; Var "b"; Var "c" ];
      ]
  in
  let op = oneofl [ Add; Sub; Mul; Div; Mod; Band; Bor; Bxor ] in
  fix
    (fun self depth ->
      if depth <= 0 then leaf
      else
        frequency
          [
            (2, leaf);
            (3, map3 (fun o l r -> Bin (o, l, r)) op (self (depth - 1)) (self (depth - 1)));
            (1, map (fun e -> Un (Neg, e)) (self (depth - 1)));
            (1, map (fun e -> Un (Bnot, e)) (self (depth - 1)));
          ])
    2

let qcheck_random_exprs_agree =
  let arb = QCheck.make ~print:(fun _ -> "<expr>") gen_expr in
  QCheck.Test.make ~name:"random integer expressions: interp = compiled" ~count:200 arb
    (fun e ->
      let prog =
        simple_main
          ~locals:[ ("a", I); ("b", I); ("c", I) ]
          [ set "a" (i 12); set "b" (i (-7)); set "c" (i 1000003); ret e ]
      in
      let interp_v = (Interp.run prog).Interp.return_value in
      let compiled = Compile.compile ~name:"q" prog in
      let m = Machine.load compiled in
      let _ = Machine.run ~max_instrs:100_000 m (fun _ -> ()) in
      Machine.halted m && Machine.ireg m Pc_isa.Reg.ret = interp_v)

let qcheck_random_array_walks_agree =
  let open QCheck in
  Test.make ~name:"random array walk programs: interp = compiled" ~count:50
    (pair (int_range 1 31) (int_range 1 7))
    (fun (stride, xor_k) ->
      let prog =
        simple_main
          ~globals:[ garr "a" 64 ]
          ~locals:[ ("j", I); ("s", I) ]
          [
            for_ "j" (i 0) (i 64)
              [ st "a" (v "j") ((v "j" *: i stride) ^: i xor_k) ];
            for_ "j" (i 0) (i 64)
              [ set "s" (v "s" +: ld "a" ((v "j" *: i stride) %: i 64)) ];
            ret (v "s");
          ]
      in
      let interp_v = (Interp.run prog).Interp.return_value in
      let compiled = Compile.compile ~name:"q" prog in
      let m = Machine.load compiled in
      let _ = Machine.run ~max_instrs:1_000_000 m (fun _ -> ()) in
      Machine.halted m && Machine.ireg m Pc_isa.Reg.ret = interp_v)

let () =
  Alcotest.run "pc_kc"
    [
      ( "check",
        [
          Alcotest.test_case "unknown variable" `Quick test_check_rejects_unknown_var;
          Alcotest.test_case "mixed arithmetic" `Quick test_check_rejects_mixed_arith;
          Alcotest.test_case "float bit operations" `Quick test_check_rejects_float_bitops;
          Alcotest.test_case "missing main" `Quick test_check_rejects_missing_main;
          Alcotest.test_case "bad arity" `Quick test_check_rejects_bad_arity;
          Alcotest.test_case "float for-variable" `Quick test_check_rejects_float_for_var;
          Alcotest.test_case "valid program accepted" `Quick test_check_accepts_valid;
        ] );
      ( "interp",
        [
          Alcotest.test_case "arithmetic" `Quick test_interp_arith;
          Alcotest.test_case "division by zero" `Quick test_interp_div_by_zero;
          Alcotest.test_case "array bounds" `Quick test_interp_bounds_check;
          Alcotest.test_case "step budget" `Quick test_interp_step_budget;
        ] );
      ( "compile",
        [
          Alcotest.test_case "arithmetic" `Quick test_compile_arith;
          Alcotest.test_case "comparisons" `Quick test_compile_comparisons;
          Alcotest.test_case "logical operators" `Quick test_compile_logical_ops;
          Alcotest.test_case "negative numbers" `Quick test_compile_negative_numbers;
          Alcotest.test_case "if/else" `Quick test_compile_if_else;
          Alcotest.test_case "while loop" `Quick test_compile_while_loop;
          Alcotest.test_case "for loop" `Quick test_compile_for_loop;
          Alcotest.test_case "global arrays" `Quick test_compile_global_arrays;
          Alcotest.test_case "recursion" `Quick test_compile_functions_and_recursion;
          Alcotest.test_case "mutual recursion" `Quick test_compile_mutual_recursion;
          Alcotest.test_case "float math" `Quick test_compile_float_math;
          Alcotest.test_case "float compare and negate" `Quick
            test_compile_float_compare_and_neg;
          Alcotest.test_case "float arrays" `Quick test_compile_float_arrays;
          Alcotest.test_case "six int arguments" `Quick test_compile_many_args;
          Alcotest.test_case "mixed-type arguments" `Quick test_compile_mixed_args;
          Alcotest.test_case "nested calls" `Quick test_compile_nested_calls;
          Alcotest.test_case "spilled locals" `Quick test_compile_spilled_locals;
          Alcotest.test_case "temporaries live across calls" `Quick
            test_compile_temps_across_calls;
          Alcotest.test_case "int/float conversions" `Quick test_compile_i2f_f2i;
          QCheck_alcotest.to_alcotest qcheck_random_exprs_agree;
          QCheck_alcotest.to_alcotest qcheck_random_array_walks_agree;
        ] );
    ]
