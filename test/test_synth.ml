(* Tests for pc_synth: the clone generator must produce valid, halting
   programs whose microarchitecture-independent characteristics match the
   profile they were generated from — the paper's central claim, checked
   by re-profiling the clone. *)

module I = Pc_isa.Instr
module Program = Pc_isa.Program
module Machine = Pc_funcsim.Machine
module Profile = Pc_profile.Profile
module Collector = Pc_profile.Collector
module Synth = Pc_synth.Synth
module Microdep = Pc_synth.Microdep
module Render = Pc_synth.Render

let profile_store : (string, Profile.t) Pc_exec.Store.t = Pc_exec.Store.create ()

let profile name =
  Pc_exec.Store.find_or_compute profile_store name (fun () ->
      let entry = Pc_workloads.Registry.find name in
      Collector.profile ~max_instrs:300_000 (Pc_workloads.Registry.compile entry))

let clone_of ?(options = Synth.default_options) name =
  Synth.generate ~options (profile name)

let run_clone ?(max_instrs = 3_000_000) clone =
  let m = Machine.load clone in
  let n = Machine.run ~max_instrs m (fun _ -> ()) in
  (m, n)

(* --- structural validity --- *)

let test_clone_halts () =
  List.iter
    (fun name ->
      let m, _ = run_clone (clone_of name) in
      if not (Machine.halted m) then Alcotest.failf "%s clone did not halt" name)
    [ "crc32"; "fft"; "qsort" ]

let test_clone_is_different_code () =
  let entry = Pc_workloads.Registry.find "sha" in
  let orig = Pc_workloads.Registry.compile entry in
  let clone = clone_of "sha" in
  Alcotest.(check bool) "different static code" true
    (orig.Program.code <> clone.Program.code)

let test_clone_deterministic () =
  let c1 = clone_of "crc32" and c2 = clone_of "crc32" in
  Alcotest.(check bool) "same options, same clone" true (c1.Program.code = c2.Program.code)

let test_seed_changes_clone () =
  let c1 = clone_of "crc32" in
  let c2 = clone_of ~options:{ Synth.default_options with Synth.seed = 99 } "crc32" in
  Alcotest.(check bool) "different seeds differ" true (c1.Program.code <> c2.Program.code)

let test_target_dynamic_respected () =
  let options = { Synth.default_options with Synth.target_dynamic = 60_000 } in
  let _, n = run_clone (clone_of ~options "sha") in
  (* at least the requested length; footprint walks may extend it *)
  Alcotest.(check bool) "at least target" true (n >= 50_000)

let test_target_blocks_respected () =
  let options = { Synth.default_options with Synth.target_blocks = 25 } in
  let clone = clone_of ~options "crc32" in
  (* 25 blocks of avg size ~8 plus preamble/loop control: well under 600 *)
  Alcotest.(check bool) "static size tracks block target" true
    (Program.length clone < 600)

(* --- characteristic matching: profile(clone) ~ profile(original) --- *)

let reprofile clone = Collector.profile ~max_instrs:2_000_000 clone

let mix_distance a b =
  (* total variation over the computational classes the generator controls *)
  let classes = [ I.C_int_mul; I.C_int_div; I.C_fp_alu; I.C_fp_mul; I.C_fp_div; I.C_load; I.C_store ] in
  List.fold_left
    (fun acc c ->
      let i = I.class_index c in
      acc +. abs_float (a.(i) -. b.(i)))
    0.0 classes

let test_mix_preserved () =
  List.iter
    (fun name ->
      let orig = profile name in
      let cloned = reprofile (clone_of name) in
      let d = mix_distance orig.Profile.global_mix cloned.Profile.global_mix in
      if d > 0.15 then
        Alcotest.failf "%s: instruction mix drifted by %.3f" name d)
    [ "crc32"; "fft"; "sha"; "adpcm_enc" ]

let test_branch_behaviour_preserved () =
  (* The original's weighted taken rate should be approximated by the
     clone's (the transition-rate mechanism drives this). *)
  let weighted_taken (p : Profile.t) =
    let num = ref 0.0 and den = ref 0.0 in
    Array.iter
      (fun (n : Profile.node) ->
        match n.Profile.branch with
        | Some b ->
          num := !num +. (b.Profile.taken_rate *. float_of_int b.Profile.execs);
          den := !den +. float_of_int b.Profile.execs
        | None -> ())
      p.Profile.nodes;
    if !den = 0.0 then 0.5 else !num /. !den
  in
  List.iter
    (fun name ->
      let orig = weighted_taken (profile name) in
      let cloned = weighted_taken (reprofile (clone_of name)) in
      if abs_float (orig -. cloned) > 0.15 then
        Alcotest.failf "%s: taken rate %.3f vs clone %.3f" name orig cloned)
    [ "crc32"; "qsort"; "sha" ]

let test_footprint_preserved () =
  (* Aggregate data footprint of the clone should be within ~4x of the
     original's (first-order stream model). *)
  let total_footprint (p : Profile.t) =
    let seen = Hashtbl.create 16 in
    Array.iter
      (fun (n : Profile.node) ->
        Array.iter
          (fun (m : Profile.mem_op) ->
            Hashtbl.replace seen (m.Profile.region / 4096) ())
          n.Profile.mem_ops)
      p.Profile.nodes;
    Hashtbl.length seen
  in
  let orig = total_footprint (profile "dijkstra") in
  let cloned = total_footprint (reprofile (clone_of "dijkstra")) in
  Alcotest.(check bool) "page-granular footprint same order" true
    (cloned >= orig / 4 && cloned <= orig * 4 + 4)

let test_dep_distance_preserved () =
  let weighted_bucket (p : Profile.t) bucket =
    let num = ref 0.0 and den = ref 0.0 in
    Array.iter
      (fun (n : Profile.node) ->
        num := !num +. (n.Profile.dep_fractions.(bucket) *. float_of_int n.Profile.count);
        den := !den +. float_of_int n.Profile.count)
      p.Profile.nodes;
    if !den = 0.0 then 0.0 else !num /. !den
  in
  let orig = profile "sha" in
  let cloned = reprofile (clone_of "sha") in
  (* distance-1 fraction (serial chains) is the performance-critical one *)
  let o = weighted_bucket orig 0 and c = weighted_bucket cloned 0 in
  if abs_float (o -. c) > 0.25 then
    Alcotest.failf "distance-1 dependency fraction %.3f vs clone %.3f" o c

(* Regression: a profiled taken rate small enough to round to zero
   slots of the branch period must clone as an always-not-taken branch.
   The old [max 1] clamp made every such branch taken once per period —
   a direction sequence the original never shows.  The counter test is
   recognisable as the self-targeted Cmp_lt immediate ([Alui (Cmp_lt,
   r, r, slots)] on the masked counter); with every branch forced to a
   near-zero taken rate, none may remain. *)
let test_zero_taken_rate_branches () =
  let p = profile "crc32" in
  let nodes =
    Array.map
      (fun (n : Profile.node) ->
        match n.Profile.branch with
        | None -> n
        | Some b ->
          {
            n with
            Profile.branch =
              Some
                {
                  b with
                  Profile.taken_rate = 0.004;
                  transition_rate = 0.1;
                };
          })
      p.Profile.nodes
  in
  let p = { p with Profile.nodes } in
  let options = { Synth.default_options with Synth.target_dynamic = 30_000 } in
  let clone = Synth.generate ~options p in
  let counter_tests = ref 0 and never_taken = ref 0 in
  Array.iter
    (fun i ->
      match i with
      | I.Alui (I.Cmp_lt, rd, ra, _) when rd = ra -> incr counter_tests
      | I.Br (I.Ne_z, r, _) when r = Pc_isa.Reg.zero -> incr never_taken
      | _ -> ())
    clone.Program.code;
  Alcotest.(check int) "no taken-once-per-period counter tests" 0
    !counter_tests;
  Alcotest.(check bool) "branches cloned as never-taken" true
    (!never_taken > 0);
  let m, _ = run_clone clone in
  Alcotest.(check bool) "still halts" true (Machine.halted m)

let test_knob_validation () =
  let reject name options =
    match Synth.generate ~options (profile "crc32") with
    | _ -> Alcotest.failf "%s accepted" name
    | exception Invalid_argument _ -> ()
  in
  reject "non-pow2 period"
    { Synth.default_options with Synth.period_min = 3 };
  reject "inverted periods"
    { Synth.default_options with Synth.period_min = 64; period_max = 4 };
  reject "negative block scale"
    { Synth.default_options with Synth.block_scale = -1.0 };
  reject "jitter above 1"
    { Synth.default_options with Synth.dep_jitter = 1.5 };
  reject "thirteen streams"
    { Synth.default_options with Synth.max_streams = 13 }

(* --- stream planning --- *)

let test_plan_streams_caps_count () =
  let streams = Synth.plan_streams ~max_streams:4 (profile "rijndael") in
  Alcotest.(check bool) "at most 4 streams" true (Array.length streams <= 4)

let test_plan_streams_weights_ordered () =
  let streams = Synth.plan_streams ~max_streams:12 (profile "dijkstra") in
  Array.iteri
    (fun i (s : Synth.stream_info) ->
      if i > 0 && s.Synth.weight > streams.(i - 1).Synth.weight then
        Alcotest.fail "streams not ordered by weight")
    streams

let test_empty_profile_rejected () =
  let empty =
    {
      Profile.name = "empty";
      instr_count = 0;
      nodes = [||];
      global_mix = Array.make I.class_count 0.0;
      avg_block_size = 0.0;
      single_stride_fraction = 1.0;
      unique_streams = 0;
    }
  in
  Alcotest.(check bool) "rejected" true
    (match Synth.generate empty with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* --- microarchitecture-dependent baseline --- *)

let test_microdep_halts_and_misses () =
  let prof = profile "dijkstra" in
  let entry = Pc_workloads.Registry.find "dijkstra" in
  let orig = Pc_workloads.Registry.compile entry in
  let targets = Microdep.measure_targets ~max_instrs:300_000 Pc_uarch.Config.base orig in
  let baseline = Microdep.generate ~profile:prof ~targets () in
  let m, _ = run_clone baseline in
  Alcotest.(check bool) "halts" true (Machine.halted m);
  (* its miss rate on the reference config should be in the target's
     neighbourhood *)
  let r = Pc_uarch.Sim.run ~max_instrs:1_000_000 Pc_uarch.Config.base baseline in
  let mr =
    if r.Pc_uarch.Sim.l1d_accesses = 0 then 0.0
    else
      float_of_int r.Pc_uarch.Sim.l1d_misses /. float_of_int r.Pc_uarch.Sim.l1d_accesses
  in
  Alcotest.(check bool) "miss rate in the target neighbourhood" true
    (abs_float (mr -. targets.Microdep.l1d_miss_rate) < 0.15)

let test_microdep_insensitive_to_cache_size () =
  (* the design flaw the paper criticises: the baseline's miss rate
     barely moves when the cache shrinks *)
  let prof = profile "dijkstra" in
  let targets = { Microdep.l1d_miss_rate = 0.2; mispredict_rate = 0.05 } in
  let baseline = Microdep.generate ~profile:prof ~targets () in
  let mr cfg =
    let r = Pc_uarch.Sim.run ~max_instrs:800_000 cfg baseline in
    if r.Pc_uarch.Sim.l1d_accesses = 0 then 0.0
    else float_of_int r.Pc_uarch.Sim.l1d_misses /. float_of_int r.Pc_uarch.Sim.l1d_accesses
  in
  let base = mr Pc_uarch.Config.base in
  let half = mr (Pc_uarch.Config.with_l1d_size 8192 Pc_uarch.Config.base) in
  Alcotest.(check bool) "flat across cache sizes" true (abs_float (base -. half) < 0.05)

(* --- rendering --- *)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_render_c () =
  let clone = clone_of "crc32" in
  let c = Render.to_c clone in
  Alcotest.(check bool) "has main" true (contains c "int main(void)");
  Alcotest.(check bool) "has asm statements" true (contains c "asm volatile");
  (* every instruction appears *)
  Alcotest.(check bool) "long enough" true
    (String.length c > 20 * Program.length clone)

let qcheck_clones_always_halt =
  QCheck.Test.make ~name:"clones halt for any seed" ~count:10
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let options = { Synth.default_options with Synth.seed; target_dynamic = 30_000 } in
      let clone = Synth.generate ~options (profile "crc32") in
      let m, _ = run_clone ~max_instrs:3_000_000 clone in
      Machine.halted m)

let () =
  Alcotest.run "pc_synth"
    [
      ( "validity",
        [
          Alcotest.test_case "clones halt" `Quick test_clone_halts;
          Alcotest.test_case "clone differs from original" `Quick
            test_clone_is_different_code;
          Alcotest.test_case "deterministic generation" `Quick test_clone_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_changes_clone;
          Alcotest.test_case "dynamic length target" `Quick test_target_dynamic_respected;
          Alcotest.test_case "block count target" `Quick test_target_blocks_respected;
          Alcotest.test_case "empty profile rejected" `Quick test_empty_profile_rejected;
          Alcotest.test_case "taken rate ~0 cloned as never-taken" `Quick
            test_zero_taken_rate_branches;
          Alcotest.test_case "knob validation" `Quick test_knob_validation;
          QCheck_alcotest.to_alcotest qcheck_clones_always_halt;
        ] );
      ( "characteristics",
        [
          Alcotest.test_case "instruction mix preserved" `Slow test_mix_preserved;
          Alcotest.test_case "branch behaviour preserved" `Slow
            test_branch_behaviour_preserved;
          Alcotest.test_case "footprint preserved" `Slow test_footprint_preserved;
          Alcotest.test_case "dependency distances preserved" `Slow
            test_dep_distance_preserved;
        ] );
      ( "streams",
        [
          Alcotest.test_case "stream cap" `Quick test_plan_streams_caps_count;
          Alcotest.test_case "weight ordering" `Quick test_plan_streams_weights_ordered;
        ] );
      ( "microdep",
        [
          Alcotest.test_case "baseline halts, hits target" `Slow
            test_microdep_halts_and_misses;
          Alcotest.test_case "baseline insensitive to cache size" `Slow
            test_microdep_insensitive_to_cache_size;
        ] );
      ("render", [ Alcotest.test_case "C output" `Quick test_render_c ]);
    ]
