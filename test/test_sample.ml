(* pc_sample: plan invariants, replay fidelity, determinism under the
   pool, and projected-vs-detailed accuracy on real workloads. *)

module Sample = Pc_sample.Sample
module Plan_cache = Pc_sample.Plan_cache
module Machine = Pc_funcsim.Machine
module Config = Pc_uarch.Config
module Sim = Pc_uarch.Sim
module Power = Pc_power.Power
module Pool = Pc_exec.Pool
module M = Pc_obs.Metrics
module E = Perfclone.Experiments

let program name = Pc_workloads.Registry.(compile (find name))

(* A fresh, empty directory for a plan cache under test. *)
let fresh_cache_dir () =
  let path = Filename.temp_file "pc_plan_cache_test" "" in
  Sys.remove path;
  path

let counter_value name =
  match List.assoc_opt name (M.snapshot ()).M.counters with
  | Some v -> v
  | None -> 0

let test_auto_interval () =
  (* ~32 intervals per run... *)
  Alcotest.(check int) "2M budget" 62_500 (Sample.auto_interval ~max_instrs:2_000_000);
  Alcotest.(check int) "500k budget" 15_625 (Sample.auto_interval ~max_instrs:500_000);
  (* ...floored at 10k below a 320k budget... *)
  Alcotest.(check int) "floor" 10_000 (Sample.auto_interval ~max_instrs:100_000);
  Alcotest.(check int) "tiny budget still floored" 10_000
    (Sample.auto_interval ~max_instrs:1);
  (* ...and capped at 1M above a 32M budget. *)
  Alcotest.(check int) "cap" 1_000_000 (Sample.auto_interval ~max_instrs:64_000_000);
  Alcotest.check_raises "non-positive budget rejected"
    (Invalid_argument "Pc_sample.auto_interval: max_instrs must be positive")
    (fun () -> ignore (Sample.auto_interval ~max_instrs:0));
  (* The default experiment budgets land inside the clamps. *)
  let check_derived name (s : E.settings) =
    let i = Sample.auto_interval ~max_instrs:s.E.sim_instrs in
    Alcotest.(check bool) name true (i >= 10_000 && i <= 1_000_000)
  in
  check_derived "default settings" E.default_settings;
  check_derived "quick settings" E.quick_settings

let test_plan_invariants () =
  let interval = 20_000 and max_instrs = 150_000 in
  let p = program "crc32" in
  let plan = Sample.plan ~seed:1 ~interval ~max_instrs p in
  Alcotest.(check bool) "at least one interval" true (plan.Sample.n_intervals >= 1);
  Alcotest.(check int) "one rep per cluster" plan.Sample.k
    (Array.length plan.Sample.reps);
  Alcotest.(check bool) "k bounded by intervals" true
    (plan.Sample.k <= plan.Sample.n_intervals);
  let weight_sum =
    Array.fold_left (fun acc r -> acc + r.Sample.weight) 0 plan.Sample.reps
  in
  Alcotest.(check int) "cluster weights partition the stream"
    plan.Sample.total_instrs weight_sum;
  Array.iter
    (fun (r : Sample.rep) ->
      Alcotest.(check int) "trace covers warmup + window"
        (r.Sample.warmup + r.Sample.window)
        (Array.length r.Sample.trace);
      Alcotest.(check bool) "window within the stream" true
        (r.Sample.start >= 0
        && r.Sample.start + r.Sample.window <= plan.Sample.total_instrs);
      Alcotest.(check bool) "warmup fits before the window" true
        (r.Sample.warmup <= r.Sample.start))
    plan.Sample.reps;
  Alcotest.(check bool) "coverage in (0, 1.5]" true
    (plan.Sample.coverage > 0.0 && plan.Sample.coverage <= 1.5)

let test_replay_fidelity () =
  (* A plan whose single window spans the whole run must replay the exact
     event stream the functional simulator produced. *)
  let max_instrs = 30_000 in
  let p = program "qsort" in
  let plan = Sample.plan ~seed:1 ~interval:max_instrs ~max_instrs p in
  Alcotest.(check int) "single interval" 1 plan.Sample.n_intervals;
  let rep = plan.Sample.reps.(0) in
  let record on_event =
    let m = Machine.load p in
    ignore (Machine.run ~max_instrs m on_event)
  in
  let capture feed =
    let acc = ref [] in
    feed (fun (ev : Machine.event) ->
        acc :=
          ( ev.Machine.pc,
            ev.Machine.iclass,
            ev.Machine.mem_addr,
            ev.Machine.is_store,
            ev.Machine.is_branch,
            ev.Machine.taken,
            ev.Machine.reads,
            ev.Machine.writes )
          :: !acc);
    List.rev !acc
  in
  let direct = capture record in
  let replayed =
    capture (fun f ->
        ignore (Sample.replay_events plan.Sample.statics rep.Sample.trace f))
  in
  Alcotest.(check int) "same stream length" (List.length direct)
    (List.length replayed);
  List.iter2
    (fun a b -> if a <> b then Alcotest.fail "replayed event differs from direct")
    direct replayed

let test_full_coverage_projection_matches_detailed () =
  (* With one cluster covering the entire run and no warmup, projection
     degenerates to detailed simulation: identical cycles and counters. *)
  let max_instrs = 30_000 in
  let p = program "sha" in
  let plan = Sample.plan ~seed:1 ~interval:max_instrs ~max_instrs p in
  let cfg = Config.base in
  let detailed = Sim.run ~max_instrs cfg p in
  let projected = Sample.project_sim cfg plan in
  Alcotest.(check int) "cycles" detailed.Sim.cycles projected.Sim.cycles;
  Alcotest.(check int) "instrs" detailed.Sim.instrs projected.Sim.instrs;
  Alcotest.(check int) "l1d misses" detailed.Sim.l1d_misses projected.Sim.l1d_misses;
  Alcotest.(check int) "mispredictions" detailed.Sim.mispredictions
    projected.Sim.mispredictions

let test_projection_accuracy () =
  (* The acceptance bar: sampled CPI within 5% of detailed on bundled
     workloads at interval 100k on the default simulation budget. *)
  let max_instrs = 2_000_000 and interval = 100_000 in
  let cfg = Config.base in
  List.iter
    (fun name ->
      let p = program name in
      let detailed = Sim.run ~max_instrs cfg p in
      let plan = Sample.plan ~seed:1 ~interval ~max_instrs p in
      let projected = Sample.project_sim cfg plan in
      let err =
        abs_float (projected.Sim.ipc -. detailed.Sim.ipc) /. detailed.Sim.ipc
      in
      if err > 0.05 then
        Alcotest.failf "%s: projected IPC %.4f vs detailed %.4f (%.1f%% error)"
          name projected.Sim.ipc detailed.Sim.ipc (100.0 *. err))
    [ "crc32"; "qsort"; "sha"; "fft"; "dijkstra" ]

let test_power_projection_accuracy () =
  (* The PR-5 acceptance bar: sampled average power within 5% of the
     detailed estimate at interval 100k on the default simulation
     budget.  The projection prices each phase's measurement window
     (measured_instrs/measured_cycles with pro-rata counters), never the
     representative's whole-run counters. *)
  let max_instrs = 2_000_000 and interval = 100_000 in
  let cfg = Config.base in
  List.iter
    (fun name ->
      let p = program name in
      let detailed = Power.total cfg (Sim.run ~max_instrs cfg p) in
      let plan = Sample.plan ~seed:1 ~interval ~max_instrs p in
      let sampled = Sample.project_power cfg plan in
      let err = abs_float (sampled -. detailed) /. detailed in
      if err > 0.05 then
        Alcotest.failf "%s: sampled power %.3f vs detailed %.3f (%.1f%% error)"
          name sampled detailed (100.0 *. err))
    [ "crc32"; "qsort"; "sha"; "fft"; "dijkstra" ]

let test_recombine_zero_cycle_guard () =
  (* Regression: a representative whose measurement window retired no
     work used to divide by zero and poison the whole projection with
     NaN.  Now the phase is skipped, its population re-attributed, and
     the all-dead case degrades to IPC 1.0. *)
  let max_instrs = 30_000 in
  let p = program "crc32" in
  let plan = Sample.plan ~seed:1 ~interval:max_instrs ~max_instrs p in
  let phases = Sample.replay_phases Config.base plan in
  let rep, live = phases.(0) in
  let dead = { live with Sim.measured_cycles = 0 } in
  let total_instrs = plan.Sample.total_instrs in
  let recombine = Sample.recombine ~config_name:"base" ~total_instrs in
  (* Mixed: the dead phase's population hands over to the survivor, so
     the result equals the survivor carrying the whole population. *)
  let mixed =
    recombine [| (60, live.Sim.instrs, live); (40, live.Sim.instrs, dead) |]
  in
  let alone = recombine [| (100, live.Sim.instrs, live) |] in
  Alcotest.(check int) "re-attributed cycles" alone.Sim.cycles mixed.Sim.cycles;
  Alcotest.(check (float 1e-12)) "re-attributed ipc" alone.Sim.ipc mixed.Sim.ipc;
  Alcotest.(check int) "re-attributed l1d misses" alone.Sim.l1d_misses
    mixed.Sim.l1d_misses;
  Alcotest.(check bool) "mixed ipc finite" true (Float.is_finite mixed.Sim.ipc);
  (* All dead: IPC 1.0, zeroed counters, nothing non-finite. *)
  let degenerate = recombine [| (100, live.Sim.instrs, dead) |] in
  Alcotest.(check (float 1e-12)) "degenerate ipc" 1.0 degenerate.Sim.ipc;
  Alcotest.(check int) "degenerate cycles" total_instrs degenerate.Sim.cycles;
  Alcotest.(check int) "degenerate misses zeroed" 0 degenerate.Sim.l1d_misses;
  (* Zero measured instructions is the same class of failure. *)
  let empty = { live with Sim.measured_instrs = 0 } in
  let mixed' =
    recombine [| (60, live.Sim.instrs, live); (40, live.Sim.instrs, empty) |]
  in
  Alcotest.(check int) "zero-instr window skipped" alone.Sim.cycles
    mixed'.Sim.cycles;
  (* The power projection survives dead phases too. *)
  let pw = Sample.project_power_of_phases Config.base plan [| (rep, dead) |] in
  Alcotest.(check bool) "all-dead power finite and positive" true
    (Float.is_finite pw && pw > 0.0);
  let pw' = Sample.project_power_of_phases Config.base plan phases in
  Alcotest.(check bool) "live power finite and positive" true
    (Float.is_finite pw' && pw' > 0.0)

let test_mpi_projection_accuracy () =
  (* The cache study consumes the *series* of 28 MPIs (figures 4/5
     correlate relative series), so the bar is series fidelity: high
     correlation with the detailed study plus a bounded per-config
     drift.  Per-config sampling bias is real but roughly uniform
     across configurations, which the correlations are insensitive
     to. *)
  let max_instrs = 300_000 and interval = 50_000 in
  List.iter
    (fun name ->
      let p = program name in
      let detailed =
        Pc_caches.Study.run_trace (fun emit ->
            let m = Machine.load p in
            Machine.run ~max_instrs m (fun ev ->
                if ev.Machine.mem_addr >= 0 then emit ev.Machine.mem_addr))
      in
      let det = Array.map (fun (r : Pc_caches.Study.result) -> r.Pc_caches.Study.mpi) detailed in
      let plan = Sample.plan ~seed:1 ~interval ~max_instrs p in
      let projected = Sample.project_mpi plan in
      let r = Pc_stats.Stats.pearson projected det in
      if r < 0.95 then
        Alcotest.failf "%s: projected/detailed MPI correlation %.3f < 0.95" name r;
      Array.iteri
        (fun i d ->
          if abs_float (projected.(i) -. d) > (0.25 *. d) +. 0.003 then
            Alcotest.failf "%s config %d: projected MPI %.5f vs detailed %.5f"
              name i projected.(i) d)
        det)
    [ "crc32"; "qsort"; "sha"; "dijkstra" ]

let test_project_mpi_onepass_identical () =
  (* The one-pass stack-distance path must reproduce the simulated
     cold/warm-bound projection bit for bit: same plan, same floats. *)
  let p = program "crc32" in
  let plan = Sample.plan ~seed:1 ~interval:50_000 ~max_instrs:300_000 p in
  let simulated = Sample.project_mpi plan in
  let onepass = Sample.project_mpi ~onepass:true plan in
  Alcotest.(check int) "28 projections" 28 (Array.length onepass);
  Array.iteri
    (fun i s ->
      if s <> onepass.(i) then
        Alcotest.failf "config %d: simulated %.12f vs one-pass %.12f" i s
          onepass.(i))
    simulated

let test_plan_determinism () =
  let p = program "fft" in
  let mk () = Sample.plan ~seed:7 ~interval:25_000 ~max_instrs:120_000 p in
  let a = mk () and b = mk () in
  Alcotest.(check int) "same k" a.Sample.k b.Sample.k;
  Array.iteri
    (fun i (ra : Sample.rep) ->
      let rb = b.Sample.reps.(i) in
      Alcotest.(check int) "same start" ra.Sample.start rb.Sample.start;
      Alcotest.(check bool) "same trace" true (ra.Sample.trace = rb.Sample.trace))
    a.Sample.reps

let test_seed_changes_clustering_stream () =
  (* Different seeds may pick different restarts; the plan stays valid. *)
  let p = program "fft" in
  let a = Sample.plan ~seed:1 ~interval:25_000 ~max_instrs:120_000 p in
  let b = Sample.plan ~seed:2 ~interval:25_000 ~max_instrs:120_000 p in
  Alcotest.(check int) "same total" a.Sample.total_instrs b.Sample.total_instrs;
  Alcotest.(check int) "same intervals" a.Sample.n_intervals b.Sample.n_intervals

(* --- persistent plan cache --- *)

let qcheck_plan_cache_roundtrip =
  (* Store-then-find must return a structurally identical plan for any
     sampling parameters: the on-disk format round-trips packed traces,
     weights and floats exactly. *)
  let p = program "crc32" in
  QCheck.Test.make ~name:"plan cache round-trip" ~count:8
    QCheck.(pair (int_range 1 1_000_000) (int_range 10_000 40_000))
    (fun (seed, interval) ->
      let plan = Sample.plan ~seed ~interval ~max_instrs:60_000 p in
      let dir = fresh_cache_dir () in
      let cache = Plan_cache.create dir in
      let key =
        Plan_cache.key
          ~profile_id:(Printf.sprintf "roundtrip-%d-%d" seed interval)
          ~interval ~seed ()
      in
      Plan_cache.store cache key plan;
      match Plan_cache.find cache key with
      | Some cached -> cached = plan
      | None -> false)

let test_plan_cache_corruption_recovery () =
  let p = program "sha" in
  let plan = Sample.plan ~seed:3 ~interval:20_000 ~max_instrs:60_000 p in
  let dir = fresh_cache_dir () in
  let cache = Plan_cache.create dir in
  let key = Plan_cache.key ~profile_id:"corrupt" ~interval:20_000 ~seed:3 () in
  Plan_cache.store cache key plan;
  Alcotest.(check bool) "stored plan readable" true
    (Plan_cache.find cache key = Some plan);
  let path = Filename.concat dir (key ^ ".plan") in
  (* Valid magic, garbled payload: must be dropped, not trusted. *)
  let oc = open_out_bin path in
  output_string oc "pc-plan/1\nnot a marshalled plan";
  close_out oc;
  Alcotest.(check bool) "corrupt entry reads as a miss" true
    (Plan_cache.find cache key = None);
  Alcotest.(check bool) "corrupt entry removed" false (Sys.file_exists path);
  let computed = ref false in
  let recovered =
    Plan_cache.find_or_compute cache key (fun () ->
        computed := true;
        plan)
  in
  Alcotest.(check bool) "recomputed after corruption" true !computed;
  Alcotest.(check bool) "recomputed plan returned" true (recovered = plan);
  Alcotest.(check bool) "recomputed plan re-stored" true
    (Plan_cache.find cache key = Some plan);
  (* A truncated file (bad magic) is the other corruption shape. *)
  let oc = open_out_bin path in
  output_string oc "pc-p";
  close_out oc;
  Alcotest.(check bool) "truncated entry reads as a miss" true
    (Plan_cache.find cache key = None);
  Alcotest.(check bool) "truncated entry removed" false (Sys.file_exists path)

let test_plan_cache_metrics () =
  let was_enabled = M.enabled () in
  M.set_enabled true;
  Fun.protect ~finally:(fun () -> M.set_enabled was_enabled) @@ fun () ->
  let p = program "crc32" in
  let plan = Sample.plan ~seed:5 ~interval:20_000 ~max_instrs:60_000 p in
  let cache = Plan_cache.create (fresh_cache_dir ()) in
  let key = Plan_cache.key ~profile_id:"metrics" ~interval:20_000 ~seed:5 () in
  let hits0 = counter_value "plan_cache.hits"
  and misses0 = counter_value "plan_cache.misses" in
  Alcotest.(check bool) "cold lookup misses" true (Plan_cache.find cache key = None);
  Alcotest.(check int) "miss counted" (misses0 + 1)
    (counter_value "plan_cache.misses");
  Plan_cache.store cache key plan;
  Alcotest.(check bool) "warm lookup hits" true
    (Plan_cache.find cache key <> None);
  Alcotest.(check int) "hit counted" (hits0 + 1) (counter_value "plan_cache.hits");
  Alcotest.(check int) "hit is not a miss" (misses0 + 1)
    (counter_value "plan_cache.misses")

let test_plan_cache_eviction () =
  let p = program "crc32" in
  let plan = Sample.plan ~seed:1 ~interval:20_000 ~max_instrs:60_000 p in
  let dir = fresh_cache_dir () in
  let cache = Plan_cache.create ~max_entries:2 dir in
  let key i = Plan_cache.key ~profile_id:(string_of_int i) ~interval:20_000 ~seed:1 () in
  List.iter (fun i -> Plan_cache.store cache (key i) plan) [ 0; 1; 2 ];
  let on_disk =
    Array.to_list (Sys.readdir dir)
    |> List.filter (fun f -> Filename.check_suffix f ".plan")
  in
  Alcotest.(check int) "eviction keeps max_entries plans" 2
    (List.length on_disk)

let test_sampled_statsim_deterministic_across_pools () =
  (* Phase-wise synthetic-trace generation: pp_statsim output identical
     at -j1 and -j4, and across repeated same-seed runs. *)
  let settings =
    {
      E.seed = 1;
      profile_instrs = 100_000;
      sim_instrs = 120_000;
      clone_dynamic = 30_000;
      benchmarks = [ "crc32"; "sha" ];
      sample = Some 30_000;
      plan_cache = None;
      cache_onepass = false;
    }
  in
  let render pool =
    E.clear_caches ();
    let ps = E.prepare ~pool settings in
    Format.asprintf "%a" E.pp_statsim (E.statsim_comparison ~pool settings ps)
  in
  let serial = render Pool.serial in
  let serial' = render Pool.serial in
  let parallel = render (Pool.create ~num_domains:4) in
  Alcotest.(check string) "sampled statsim identical across runs" serial serial';
  Alcotest.(check string) "sampled statsim identical at -j1 and -j4" serial
    parallel

let test_sampled_experiments_deterministic_across_pools () =
  (* Sampling on: fig6/fig4 output identical at -j1 and -j4. *)
  let settings =
    {
      E.seed = 1;
      profile_instrs = 100_000;
      sim_instrs = 120_000;
      clone_dynamic = 30_000;
      benchmarks = [ "crc32"; "sha" ];
      sample = Some 30_000;
      plan_cache = None;
      cache_onepass = false;
    }
  in
  let render pool =
    E.clear_caches ();
    let ps = E.prepare ~pool settings in
    Format.asprintf "%a%a" E.pp_fig6
      (E.base_runs ~pool settings ps)
      E.pp_fig4
      (E.cache_studies ~pool settings ps)
  in
  let serial = render Pool.serial in
  let parallel = render (Pool.create ~num_domains:4) in
  Alcotest.(check string) "sampled figs identical at -j1 and -j4" serial parallel

let test_sampling_off_matches_seed_behaviour () =
  (* The default settings carry [sample = None]; a sampled and an
     unsampled run use different estimators, so their outputs differ —
     but the unsampled path must not depend on the sample field's mere
     presence.  (Byte-identity of the unsampled path against main is
     enforced by the existing fig tests, which all run with
     [sample = None].) *)
  Alcotest.(check bool) "default settings sample off" true
    (E.default_settings.E.sample = None);
  Alcotest.(check bool) "quick settings sample off" true
    (E.quick_settings.E.sample = None)

let () =
  Alcotest.run "pc_sample"
    [
      ( "plan",
        [
          Alcotest.test_case "auto interval" `Quick test_auto_interval;
          Alcotest.test_case "invariants" `Quick test_plan_invariants;
          Alcotest.test_case "determinism" `Quick test_plan_determinism;
          Alcotest.test_case "seed robustness" `Quick
            test_seed_changes_clustering_stream;
        ] );
      ( "replay",
        [
          Alcotest.test_case "fidelity" `Quick test_replay_fidelity;
          Alcotest.test_case "full-coverage projection is exact" `Quick
            test_full_coverage_projection_matches_detailed;
          Alcotest.test_case "zero-cycle phases skipped" `Quick
            test_recombine_zero_cycle_guard;
        ] );
      ( "accuracy",
        [
          Alcotest.test_case "projected IPC within 5%" `Slow
            test_projection_accuracy;
          Alcotest.test_case "projected power within 5%" `Slow
            test_power_projection_accuracy;
          Alcotest.test_case "projected MPI tracks detailed" `Slow
            test_mpi_projection_accuracy;
          Alcotest.test_case "one-pass MPI projection byte-identical" `Slow
            test_project_mpi_onepass_identical;
        ] );
      ( "plan-cache",
        [
          QCheck_alcotest.to_alcotest qcheck_plan_cache_roundtrip;
          Alcotest.test_case "corruption recovery" `Quick
            test_plan_cache_corruption_recovery;
          Alcotest.test_case "hit/miss metrics" `Quick test_plan_cache_metrics;
          Alcotest.test_case "eviction bounds entries" `Quick
            test_plan_cache_eviction;
        ] );
      ( "integration",
        [
          Alcotest.test_case "sampled figs deterministic across pools" `Slow
            test_sampled_experiments_deterministic_across_pools;
          Alcotest.test_case "sampled statsim deterministic across pools" `Slow
            test_sampled_statsim_deterministic_across_pools;
          Alcotest.test_case "sampling off by default" `Quick
            test_sampling_off_matches_seed_behaviour;
        ] );
    ]
