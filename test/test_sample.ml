(* pc_sample: plan invariants, replay fidelity, determinism under the
   pool, and projected-vs-detailed accuracy on real workloads. *)

module Sample = Pc_sample.Sample
module Machine = Pc_funcsim.Machine
module Config = Pc_uarch.Config
module Sim = Pc_uarch.Sim
module Pool = Pc_exec.Pool
module E = Perfclone.Experiments

let program name = Pc_workloads.Registry.(compile (find name))

let test_plan_invariants () =
  let interval = 20_000 and max_instrs = 150_000 in
  let p = program "crc32" in
  let plan = Sample.plan ~seed:1 ~interval ~max_instrs p in
  Alcotest.(check bool) "at least one interval" true (plan.Sample.n_intervals >= 1);
  Alcotest.(check int) "one rep per cluster" plan.Sample.k
    (Array.length plan.Sample.reps);
  Alcotest.(check bool) "k bounded by intervals" true
    (plan.Sample.k <= plan.Sample.n_intervals);
  let weight_sum =
    Array.fold_left (fun acc r -> acc + r.Sample.weight) 0 plan.Sample.reps
  in
  Alcotest.(check int) "cluster weights partition the stream"
    plan.Sample.total_instrs weight_sum;
  Array.iter
    (fun (r : Sample.rep) ->
      Alcotest.(check int) "trace covers warmup + window"
        (r.Sample.warmup + r.Sample.window)
        (Array.length r.Sample.trace);
      Alcotest.(check bool) "window within the stream" true
        (r.Sample.start >= 0
        && r.Sample.start + r.Sample.window <= plan.Sample.total_instrs);
      Alcotest.(check bool) "warmup fits before the window" true
        (r.Sample.warmup <= r.Sample.start))
    plan.Sample.reps;
  Alcotest.(check bool) "coverage in (0, 1.5]" true
    (plan.Sample.coverage > 0.0 && plan.Sample.coverage <= 1.5)

let test_replay_fidelity () =
  (* A plan whose single window spans the whole run must replay the exact
     event stream the functional simulator produced. *)
  let max_instrs = 30_000 in
  let p = program "qsort" in
  let plan = Sample.plan ~seed:1 ~interval:max_instrs ~max_instrs p in
  Alcotest.(check int) "single interval" 1 plan.Sample.n_intervals;
  let rep = plan.Sample.reps.(0) in
  let record on_event =
    let m = Machine.load p in
    ignore (Machine.run ~max_instrs m on_event)
  in
  let capture feed =
    let acc = ref [] in
    feed (fun (ev : Machine.event) ->
        acc :=
          ( ev.Machine.pc,
            ev.Machine.iclass,
            ev.Machine.mem_addr,
            ev.Machine.is_store,
            ev.Machine.is_branch,
            ev.Machine.taken,
            ev.Machine.reads,
            ev.Machine.writes )
          :: !acc);
    List.rev !acc
  in
  let direct = capture record in
  let replayed =
    capture (fun f ->
        ignore (Sample.replay_events plan.Sample.statics rep.Sample.trace f))
  in
  Alcotest.(check int) "same stream length" (List.length direct)
    (List.length replayed);
  List.iter2
    (fun a b -> if a <> b then Alcotest.fail "replayed event differs from direct")
    direct replayed

let test_full_coverage_projection_matches_detailed () =
  (* With one cluster covering the entire run and no warmup, projection
     degenerates to detailed simulation: identical cycles and counters. *)
  let max_instrs = 30_000 in
  let p = program "sha" in
  let plan = Sample.plan ~seed:1 ~interval:max_instrs ~max_instrs p in
  let cfg = Config.base in
  let detailed = Sim.run ~max_instrs cfg p in
  let projected = Sample.project_sim cfg plan in
  Alcotest.(check int) "cycles" detailed.Sim.cycles projected.Sim.cycles;
  Alcotest.(check int) "instrs" detailed.Sim.instrs projected.Sim.instrs;
  Alcotest.(check int) "l1d misses" detailed.Sim.l1d_misses projected.Sim.l1d_misses;
  Alcotest.(check int) "mispredictions" detailed.Sim.mispredictions
    projected.Sim.mispredictions

let test_projection_accuracy () =
  (* The acceptance bar: sampled CPI within 5% of detailed on bundled
     workloads at interval 100k on the default simulation budget. *)
  let max_instrs = 2_000_000 and interval = 100_000 in
  let cfg = Config.base in
  List.iter
    (fun name ->
      let p = program name in
      let detailed = Sim.run ~max_instrs cfg p in
      let plan = Sample.plan ~seed:1 ~interval ~max_instrs p in
      let projected = Sample.project_sim cfg plan in
      let err =
        abs_float (projected.Sim.ipc -. detailed.Sim.ipc) /. detailed.Sim.ipc
      in
      if err > 0.05 then
        Alcotest.failf "%s: projected IPC %.4f vs detailed %.4f (%.1f%% error)"
          name projected.Sim.ipc detailed.Sim.ipc (100.0 *. err))
    [ "crc32"; "qsort"; "sha"; "fft"; "dijkstra" ]

let test_mpi_projection_accuracy () =
  (* The cache study consumes the *series* of 28 MPIs (figures 4/5
     correlate relative series), so the bar is series fidelity: high
     correlation with the detailed study plus a bounded per-config
     drift.  Per-config sampling bias is real but roughly uniform
     across configurations, which the correlations are insensitive
     to. *)
  let max_instrs = 300_000 and interval = 50_000 in
  List.iter
    (fun name ->
      let p = program name in
      let detailed =
        Pc_caches.Study.run_trace (fun emit ->
            let m = Machine.load p in
            Machine.run ~max_instrs m (fun ev ->
                if ev.Machine.mem_addr >= 0 then emit ev.Machine.mem_addr))
      in
      let det = Array.map (fun (r : Pc_caches.Study.result) -> r.Pc_caches.Study.mpi) detailed in
      let plan = Sample.plan ~seed:1 ~interval ~max_instrs p in
      let projected = Sample.project_mpi plan in
      let r = Pc_stats.Stats.pearson projected det in
      if r < 0.95 then
        Alcotest.failf "%s: projected/detailed MPI correlation %.3f < 0.95" name r;
      Array.iteri
        (fun i d ->
          if abs_float (projected.(i) -. d) > (0.25 *. d) +. 0.003 then
            Alcotest.failf "%s config %d: projected MPI %.5f vs detailed %.5f"
              name i projected.(i) d)
        det)
    [ "crc32"; "qsort"; "sha"; "dijkstra" ]

let test_plan_determinism () =
  let p = program "fft" in
  let mk () = Sample.plan ~seed:7 ~interval:25_000 ~max_instrs:120_000 p in
  let a = mk () and b = mk () in
  Alcotest.(check int) "same k" a.Sample.k b.Sample.k;
  Array.iteri
    (fun i (ra : Sample.rep) ->
      let rb = b.Sample.reps.(i) in
      Alcotest.(check int) "same start" ra.Sample.start rb.Sample.start;
      Alcotest.(check bool) "same trace" true (ra.Sample.trace = rb.Sample.trace))
    a.Sample.reps

let test_seed_changes_clustering_stream () =
  (* Different seeds may pick different restarts; the plan stays valid. *)
  let p = program "fft" in
  let a = Sample.plan ~seed:1 ~interval:25_000 ~max_instrs:120_000 p in
  let b = Sample.plan ~seed:2 ~interval:25_000 ~max_instrs:120_000 p in
  Alcotest.(check int) "same total" a.Sample.total_instrs b.Sample.total_instrs;
  Alcotest.(check int) "same intervals" a.Sample.n_intervals b.Sample.n_intervals

let test_sampled_experiments_deterministic_across_pools () =
  (* Sampling on: fig6/fig4 output identical at -j1 and -j4. *)
  let settings =
    {
      E.seed = 1;
      profile_instrs = 100_000;
      sim_instrs = 120_000;
      clone_dynamic = 30_000;
      benchmarks = [ "crc32"; "sha" ];
      sample = Some 30_000;
    }
  in
  let render pool =
    E.clear_caches ();
    let ps = E.prepare ~pool settings in
    Format.asprintf "%a%a" E.pp_fig6
      (E.base_runs ~pool settings ps)
      E.pp_fig4
      (E.cache_studies ~pool settings ps)
  in
  let serial = render Pool.serial in
  let parallel = render (Pool.create ~num_domains:4) in
  Alcotest.(check string) "sampled figs identical at -j1 and -j4" serial parallel

let test_sampling_off_matches_seed_behaviour () =
  (* The default settings carry [sample = None]; a sampled and an
     unsampled run use different estimators, so their outputs differ —
     but the unsampled path must not depend on the sample field's mere
     presence.  (Byte-identity of the unsampled path against main is
     enforced by the existing fig tests, which all run with
     [sample = None].) *)
  Alcotest.(check bool) "default settings sample off" true
    (E.default_settings.E.sample = None);
  Alcotest.(check bool) "quick settings sample off" true
    (E.quick_settings.E.sample = None)

let () =
  Alcotest.run "pc_sample"
    [
      ( "plan",
        [
          Alcotest.test_case "invariants" `Quick test_plan_invariants;
          Alcotest.test_case "determinism" `Quick test_plan_determinism;
          Alcotest.test_case "seed robustness" `Quick
            test_seed_changes_clustering_stream;
        ] );
      ( "replay",
        [
          Alcotest.test_case "fidelity" `Quick test_replay_fidelity;
          Alcotest.test_case "full-coverage projection is exact" `Quick
            test_full_coverage_projection_matches_detailed;
        ] );
      ( "accuracy",
        [
          Alcotest.test_case "projected IPC within 5%" `Slow
            test_projection_accuracy;
          Alcotest.test_case "projected MPI tracks detailed" `Slow
            test_mpi_projection_accuracy;
        ] );
      ( "integration",
        [
          Alcotest.test_case "sampled figs deterministic across pools" `Slow
            test_sampled_experiments_deterministic_across_pools;
          Alcotest.test_case "sampling off by default" `Quick
            test_sampling_off_matches_seed_behaviour;
        ] );
    ]
