(* Benchmark harness: one Bechamel test per table/figure of the paper.

   Each test measures the wall-clock cost of regenerating that table or
   figure on a reduced workload (one benchmark, small budgets), so the
   harness doubles as a performance-regression suite for the pipeline
   itself.  After the timings, the harness prints every table and figure
   at the quick experiment settings — the same rows/series the paper
   reports.

     dune exec bench/main.exe -- [--json FILE] [--dispatch-json FILE]
                                 [--cachesweep-json FILE] [--no-series]

   --json writes the timings in the stable pc-bench/1 schema (see
   EXPERIMENTS.md) so CI can archive them run over run; --dispatch-json
   distils the two funcsim rows into a pc-dispatch/1 comparison (seed
   interpreter vs threaded engine, retired-instrs/sec) that CI gates at
   >=5x; --cachesweep-json distils the two cache rows into a
   pc-cachesweep/1 comparison (simulated vs one-pass stack-distance
   28-config sweep, with per-config result agreement) that CI gates at
   >=5x and zero mismatches; --no-series skips the table/figure
   regeneration after the timings. *)

open Bechamel
module E = Perfclone.Experiments
module Pool = Pc_exec.Pool

(* Reduced settings so a single sample is millisecond-scale. *)
let bench_settings =
  {
    E.seed = 1;
    profile_instrs = 50_000;
    sim_instrs = 60_000;
    clone_dynamic = 20_000;
    benchmarks = [ "crc32" ];
    sample = None;
    plan_cache = None;
    cache_onepass = false;
  }

(* Shared pipelines, built once: each test measures only its own
   experiment's incremental cost. *)
let pipelines = lazy (E.prepare bench_settings)

(* Serial-vs-parallel targets for the pc_exec pool: the same four-way
   profile+synthesize fan-out, once on one domain and once on the
   default worker count.  Goes through [Pipeline.clone_program] (not the
   memo store) so every sample pays the full pipeline cost. *)
let parallel_pool = Pool.create ~num_domains:(Pool.default_jobs ())

let fanout_programs =
  lazy
    (List.map
       (fun n -> Pc_workloads.Registry.(compile (find n)))
       [ "crc32"; "sha"; "qsort"; "fft" ])

let clone_fanout pool =
  Pool.map pool
    (fun p ->
      Perfclone.Pipeline.clone_program ~profile_instrs:50_000
        ~target_dynamic:20_000 p)
    (Lazy.force fanout_programs)

(* Sampled-vs-detailed timing pair, bypassing the memo stores so every
   sample pays the full simulation cost: CI compares these two rows to
   verify the wall-clock reduction sampling claims. *)
let sample_budget = 240_000
let sample_interval = 30_000
let sample_program = lazy (Pc_workloads.Registry.(compile (find "crc32")))

let sample_plan =
  lazy
    (Pc_sample.Sample.plan ~seed:1 ~interval:sample_interval
       ~max_instrs:sample_budget
       (Lazy.force sample_program))

(* Dispatch-throughput pair: the retained reference interpreter
   (Machine_ref, the seed engine) vs the pre-decoded threaded engine on
   the same ALU-dominant kernel and budget.  The kernel isolates
   dispatch cost — memory-heavy workloads dilute it behind page-cache
   traffic — and CI holds the ratio of these two rows (archived by
   --dispatch-json) at the >=5x retired-instrs/sec the rewrite claims. *)
let dispatch_budget = 200_000

let dispatch_program =
  lazy
    (let open Pc_isa.Instr in
     let body =
       [|
         Alu (Add, 5, 4, 3); Alu (Xor, 6, 5, 4); Alui (Sll, 7, 6, 7);
         Alu (Or, 8, 7, 5); Alui (Srl, 9, 8, 3); Alu (Sub, 4, 9, 6);
         Alui (Add, 5, 5, 17); Alu (And, 6, 5, 9);
       |]
     in
     let code =
       Array.concat
         [
           [| Li (3, 1_000_000_000L) |];
           body;
           [| Alui (Sub, 3, 3, 1); Br (Ne_z, 3, Abs 1); Halt |];
         ]
     in
     Pc_isa.Program.v ~name:"dispatch-kernel" ~code ~data:[] ~data_bytes:0)

(* Multi-tenant co-run targets: the shared-L2 arbiter engine on a duet
   and a quad mix, machines freshly loaded per sample so every run pays
   the full co-run cost.  Budgets are per tenant. *)
let scenario_budget = 30_000

let scenario_programs names =
  lazy
    (List.map
       (fun n -> (n, Pc_workloads.Registry.(compile (find n))))
       names)

let duet_programs = scenario_programs [ "crc32"; "qsort" ]
let quad_programs = scenario_programs [ "crc32"; "qsort"; "sha"; "dijkstra" ]

let co_run_mix programs =
  let inputs =
    Array.of_list
      (List.map
         (fun (name, p) ->
           {
             Pc_scenario.Scenario.label = name;
             budget = scenario_budget;
             source =
               Pc_scenario.Scenario.From_machine (Pc_funcsim.Machine.load p);
           })
         (Lazy.force programs))
  in
  Pc_scenario.Scenario.co_run Pc_uarch.Config.base inputs

(* Simulated-vs-one-pass cache-sweep pair: the same recorded address
   trace priced over the 28-configuration study grid by the 28 tag-array
   simulations and by the single stack-distance traversal.  The trace is
   recorded once (crc32, the registry's first benchmark) so both rows
   replay identical references; CI holds the ratio of the two rows
   (archived by --cachesweep-json) at the >=5x the one-pass rewrite
   claims, and the same artefact carries the result-agreement fields. *)
let sweep_budget = 200_000

let sweep_trace =
  lazy
    (let buf = ref (Array.make 4096 0) and n = ref 0 in
     let push a =
       if !n = Array.length !buf then begin
         let grown = Array.make (2 * !n) 0 in
         Array.blit !buf 0 grown 0 !n;
         buf := grown
       end;
       !buf.(!n) <- a;
       incr n
     in
     let m = Pc_funcsim.Machine.load (Lazy.force sample_program) in
     let instrs =
       Pc_funcsim.Machine.run ~max_instrs:sweep_budget m (fun ev ->
           if ev.Pc_funcsim.Machine.mem_addr >= 0 then push ev.Pc_funcsim.Machine.mem_addr)
     in
     (Array.sub !buf 0 !n, instrs))

let sweep_feed emit =
  let trace, instrs = Lazy.force sweep_trace in
  Array.iter emit trace;
  instrs

let sweep_ref () = Pc_caches.Study.run_trace sweep_feed
let sweep_onepass () = Pc_caches.Study.run_trace_onepass sweep_feed

let dispatch_ref () =
  let m = Pc_funcsim.Machine_ref.load (Lazy.force dispatch_program) in
  Pc_funcsim.Machine_ref.run ~max_instrs:dispatch_budget m ignore

let dispatch_new () =
  let m = Pc_funcsim.Machine.load (Lazy.force dispatch_program) in
  Pc_funcsim.Machine.run_batched ~max_instrs:dispatch_budget m ignore

let tests =
  [
    Test.make ~name:"table1:benchmark-registry"
      (Staged.stage (fun () -> List.length Pc_workloads.Registry.all));
    Test.make ~name:"table2:base-config"
      (Staged.stage (fun () -> Pc_uarch.Config.with_widths 2 Pc_uarch.Config.base));
    Test.make ~name:"fig3:single-stride-profile"
      (Staged.stage (fun () -> E.fig3 (Lazy.force pipelines)));
    Test.make ~name:"fig4:28-cache-study"
      (Staged.stage (fun () -> E.cache_studies bench_settings (Lazy.force pipelines)));
    Test.make ~name:"fig5:cache-rankings"
      (Staged.stage (fun () ->
           E.rankings_scatter (E.cache_studies bench_settings (Lazy.force pipelines))));
    Test.make ~name:"fig6+7:base-ipc-power"
      (Staged.stage (fun () -> E.base_runs bench_settings (Lazy.force pipelines)));
    Test.make ~name:"table3+fig8+9:design-changes"
      (Staged.stage (fun () -> E.run_design_changes bench_settings (Lazy.force pipelines)));
    Test.make ~name:"ablation:microdep-baseline"
      (Staged.stage (fun () -> E.ablation bench_settings (Lazy.force pipelines)));
    Test.make ~name:"statsim:ipc-estimate"
      (Staged.stage (fun () -> E.statsim_comparison bench_settings (Lazy.force pipelines)));
    Test.make ~name:"portable:kc-clone"
      (Staged.stage (fun () -> E.portable_comparison bench_settings (Lazy.force pipelines)));
    Test.make ~name:"pipeline:profile+synthesize"
      (Staged.stage (fun () ->
           Perfclone.Pipeline.clone_benchmark ~profile_instrs:50_000
             ~target_dynamic:20_000 "crc32"));
    Test.make ~name:"sample:detailed-sim"
      (Staged.stage (fun () ->
           Pc_uarch.Sim.run ~max_instrs:sample_budget Pc_uarch.Config.base
             (Lazy.force sample_program)));
    Test.make ~name:"sample:plan"
      (Staged.stage (fun () ->
           Pc_sample.Sample.plan ~seed:1 ~interval:sample_interval
             ~max_instrs:sample_budget
             (Lazy.force sample_program)));
    Test.make ~name:"sample:projected-sim"
      (Staged.stage (fun () ->
           Pc_sample.Sample.project_sim Pc_uarch.Config.base
             (Lazy.force sample_plan)));
    Test.make ~name:"funcsim:dispatch-ref"
      (Staged.stage dispatch_ref);
    Test.make ~name:"funcsim:dispatch"
      (Staged.stage dispatch_new);
    Test.make ~name:"cache:sweep-ref"
      (Staged.stage sweep_ref);
    Test.make ~name:"cache:sweep-onepass"
      (Staged.stage sweep_onepass);
    Test.make ~name:"fidelity:clone-reprofile"
      (Staged.stage (fun () ->
           let p = List.hd (Lazy.force pipelines) in
           Pc_trace.Fidelity.measure ~max_instrs:50_000
             ~bench:p.Perfclone.Pipeline.name
             ~original:p.Perfclone.Pipeline.profile
             p.Perfclone.Pipeline.clone));
    Test.make ~name:"scenario:duet"
      (Staged.stage (fun () -> co_run_mix duet_programs));
    Test.make ~name:"scenario:quad"
      (Staged.stage (fun () -> co_run_mix quad_programs));
    Test.make ~name:"exec:clone-fanout-serial"
      (Staged.stage (fun () -> clone_fanout Pool.serial));
    Test.make
      ~name:(Printf.sprintf "exec:clone-fanout-j%d" (Pool.num_domains parallel_pool))
      (Staged.stage (fun () -> clone_fanout parallel_pool));
  ]

let run_timings () =
  let cfg = Benchmark.cfg ~limit:30 ~quota:(Time.second 0.5) ~stabilize:false () in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  Format.printf "== Bechamel timings (per regeneration, reduced workload) ==@.";
  List.concat_map
    (fun test ->
      List.map
        (fun elt ->
          let raw = Benchmark.run cfg instances elt in
          let est = Analyze.one ols Toolkit.Instance.monotonic_clock raw in
          let name = Test.Elt.name elt in
          match Analyze.OLS.estimates est with
          | Some (t :: _) ->
            Format.printf "  %-34s %12.4f ms/run@." name (t /. 1e6);
            (name, Some (t /. 1e6))
          | Some [] | None ->
            Format.printf "  %-34s (no estimate)@." name;
            (name, None))
        (Test.elements test))
    tests

(* Schema "pc-bench/1" (documented in EXPERIMENTS.md): results in test
   order; [ms_per_run] is null when OLS produced no estimate. *)
let write_json path rows =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"schema\":\"pc-bench/1\",\"results\":[";
  List.iteri
    (fun i (name, ms) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "{\"name\":\"";
      String.iter
        (fun c ->
          match c with
          | '"' -> Buffer.add_string b "\\\""
          | '\\' -> Buffer.add_string b "\\\\"
          | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
          | c -> Buffer.add_char b c)
        name;
      Buffer.add_string b "\",\"ms_per_run\":";
      (match ms with
      | Some v -> Buffer.add_string b (Printf.sprintf "%.6f" v)
      | None -> Buffer.add_string b "null");
      Buffer.add_char b '}')
    rows;
  Buffer.add_string b "]}\n";
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Buffer.contents b))

(* Schema "pc-dispatch/1" (documented in EXPERIMENTS.md): the
   interpreter-rewrite comparison distilled from the two funcsim rows of
   the same timing run — retired-instrs/sec for the seed interpreter and
   the threaded engine, and their ratio.  CI archives this file and
   gates [speedup]. *)
let write_dispatch_json path rows =
  let ms name =
    match List.assoc_opt name rows with
    | Some (Some v) when v > 0.0 -> v
    | _ ->
      Printf.eprintf "bench: no timing estimate for %s\n" name;
      exit 2
  in
  let ref_ms = ms "funcsim:dispatch-ref" and new_ms = ms "funcsim:dispatch" in
  let ips ms = float_of_int dispatch_budget /. (ms /. 1000.0) in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc
        "{\"schema\":\"pc-dispatch/1\",\"program\":\"dispatch-kernel\",\
         \"budget\":%d,\"ref_ms_per_run\":%.6f,\"new_ms_per_run\":%.6f,\
         \"ref_instrs_per_sec\":%.0f,\"new_instrs_per_sec\":%.0f,\
         \"speedup\":%.3f}\n"
        dispatch_budget ref_ms new_ms (ips ref_ms) (ips new_ms)
        (ref_ms /. new_ms))

(* Schema "pc-cachesweep/1" (documented in EXPERIMENTS.md): the one-pass
   cache-sweep comparison distilled from the two cache rows of the same
   timing run, plus result agreement measured directly — both paths are
   run once more over the recorded trace and compared per configuration
   (misses, accesses and mpi must match exactly; [mismatches] counts
   configs that differ and [max_abs_mpi_diff] bounds the drift).  CI
   archives this file and gates [speedup] and [mismatches]. *)
let write_cachesweep_json path rows =
  let ms name =
    match List.assoc_opt name rows with
    | Some (Some v) when v > 0.0 -> v
    | _ ->
      Printf.eprintf "bench: no timing estimate for %s\n" name;
      exit 2
  in
  let ref_ms = ms "cache:sweep-ref" and onepass_ms = ms "cache:sweep-onepass" in
  let refs = Array.length (fst (Lazy.force sweep_trace)) in
  let simulated = sweep_ref () and onepass = sweep_onepass () in
  let mismatches = ref 0 and max_diff = ref 0.0 in
  Array.iteri
    (fun i (s : Pc_caches.Study.result) ->
      let o = onepass.(i) in
      let diff = abs_float (s.Pc_caches.Study.mpi -. o.Pc_caches.Study.mpi) in
      if diff > !max_diff then max_diff := diff;
      if
        s.Pc_caches.Study.misses <> o.Pc_caches.Study.misses
        || s.Pc_caches.Study.accesses <> o.Pc_caches.Study.accesses
        || s.Pc_caches.Study.mpi <> o.Pc_caches.Study.mpi
      then incr mismatches)
    simulated;
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc
        "{\"schema\":\"pc-cachesweep/1\",\"trace\":\"crc32\",\"budget\":%d,\
         \"refs\":%d,\"configs\":%d,\"ref_ms_per_run\":%.6f,\
         \"onepass_ms_per_run\":%.6f,\"speedup\":%.3f,\"mismatches\":%d,\
         \"max_abs_mpi_diff\":%.9f}\n"
        sweep_budget refs
        (Array.length Pc_caches.Study.configs)
        ref_ms onepass_ms (ref_ms /. onepass_ms) !mismatches !max_diff)

let print_series () =
  Format.printf "@.== Paper tables and figures (quick settings) ==@.";
  let s = E.quick_settings in
  let ps = E.prepare s in
  E.pp_fig3 Format.std_formatter (E.fig3 ps);
  let studies = E.cache_studies s ps in
  E.pp_fig4 Format.std_formatter studies;
  E.pp_fig5 Format.std_formatter (E.rankings_scatter studies);
  let runs = E.base_runs s ps in
  E.pp_fig6 Format.std_formatter runs;
  E.pp_fig7 Format.std_formatter runs;
  let changes = E.run_design_changes s ps in
  E.pp_table3 Format.std_formatter changes;
  let width_change = List.nth changes 2 in
  E.pp_fig8 Format.std_formatter width_change;
  E.pp_fig9 Format.std_formatter width_change;
  E.pp_ablation Format.std_formatter (E.ablation s ps);
  E.pp_statsim Format.std_formatter (E.statsim_comparison s ps);
  E.pp_portable Format.std_formatter (E.portable_comparison s ps)

open Cmdliner

let main json dispatch_json cachesweep_json no_series ledger =
  let rows = run_timings () in
  Option.iter (fun path -> write_json path rows) json;
  Option.iter (fun path -> write_dispatch_json path rows) dispatch_json;
  Option.iter (fun path -> write_cachesweep_json path rows) cachesweep_json;
  if not no_series then print_series ();
  (* Metrics stay off here: Bechamel's adaptive run counts would make
     the recorded counters (and so the record id) nondeterministic. *)
  match ledger with
  | None -> ()
  | Some dir ->
    let artifacts =
      List.filter_map
        (fun (schema, path) ->
          Option.map (fun path -> { Pc_report.Ledger.schema; path }) path)
        [
          ("pc-bench/1", json);
          ("pc-dispatch/1", dispatch_json);
          ("pc-cachesweep/1", cachesweep_json);
        ]
    in
    let file =
      Pc_report.Ledger.record (Pc_report.Ledger.create dir) ~tool:"bench"
        ~argv:(Array.to_list Sys.argv) ~seed:bench_settings.E.seed
        ~jobs:(Pool.num_domains parallel_pool) ~artifacts
    in
    Printf.eprintf "bench: ledger: recorded %s\n" file

let json_arg =
  Arg.(value & opt (some string) None
       & info [ "json" ] ~docv:"FILE"
           ~doc:"Write the timings as JSON (schema $(b,pc-bench/1)) to $(docv).")

let dispatch_json_arg =
  Arg.(value & opt (some string) None
       & info [ "dispatch-json" ] ~docv:"FILE"
           ~doc:"Write the interpreter-rewrite comparison (schema \
                 $(b,pc-dispatch/1): seed-interpreter vs threaded-engine \
                 retired-instrs/sec and their ratio) to $(docv).")

let cachesweep_json_arg =
  Arg.(value & opt (some string) None
       & info [ "cachesweep-json" ] ~docv:"FILE"
           ~doc:"Write the one-pass cache-sweep comparison (schema \
                 $(b,pc-cachesweep/1): simulated vs stack-distance sweep \
                 timings, their ratio, and per-config result agreement) \
                 to $(docv).")

let no_series_arg =
  Arg.(value & flag
       & info [ "no-series" ]
           ~doc:"Skip regenerating the paper tables/figures after the timings.")

let ledger_arg =
  Arg.(value
       & opt ~vopt:(Some "") (some string) None
       & info [ "ledger" ] ~docv:"DIR"
           ~doc:"Append a pc-run/1 record of this invocation to the run \
                 ledger under $(docv) (default \
                 \\$XDG_CACHE_HOME/pc-ledger) for later drift diffing \
                 with pc_diff.")

let cmd =
  Cmd.v
    (Cmd.info "bench" ~doc:"benchmark the experiment pipeline")
    Term.(
      const main $ json_arg $ dispatch_json_arg $ cachesweep_json_arg
      $ no_series_arg $ ledger_arg)

let () = exit (Cmd.eval cmd)
